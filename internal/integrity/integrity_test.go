package integrity

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/term"
)

func spec(id, prereq string, offered ...string) catalog.CourseSpec {
	return catalog.CourseSpec{ID: id, Prereq: prereq, Offered: offered, Workload: 10}
}

func issueCodes(rep Report) string {
	codes := make([]string, len(rep.Issues))
	for i, is := range rep.Issues {
		codes[i] = is.Code
	}
	return strings.Join(codes, ",")
}

func hasIssue(rep Report, code, course string) bool {
	for _, is := range rep.Issues {
		if is.Code == code && is.Course == course {
			return true
		}
	}
	return false
}

func TestCheckSpecs(t *testing.T) {
	specs := []catalog.CourseSpec{
		spec("A 1", "", "Fall 2012"),
		spec("A 1", "", "Fall 2012"),              // duplicate ID
		spec("B 1", "A 1 and (", "Fall 2012"),     // prereq syntax
		spec("C 1", "Z 9 and Y 8", "Fall 2012"),   // dangling ×2
		spec("D 1", "D 1", "Fall 2012"),           // self-prereq
		spec("E 1", "A 1", "Octember 2012"),       // bad term
		spec("F 1", "", "Fall 2012", "Fall 2012"), // duplicate offering (warning)
		{Offered: []string{"Fall 2012"}},          // empty ID
	}
	rep := CheckSpecs(term.TwoSeason, specs)
	if rep.OK() {
		t.Fatal("defective specs passed")
	}
	if rep.Courses != len(specs) {
		t.Errorf("Courses = %d, want %d", rep.Courses, len(specs))
	}
	for _, want := range []struct{ code, course string }{
		{CodeDuplicate, "A 1"},
		{CodePrereqSyntax, "B 1"},
		{CodeDanglingPrereq, "C 1"},
		{CodeSelfPrereq, "D 1"},
		{CodeBadTerm, "E 1"},
		{CodeBadID, ""},
	} {
		if !hasIssue(rep, want.code, want.course) {
			t.Errorf("missing %s for %q in %s", want.code, want.course, issueCodes(rep))
		}
	}
	if !hasIssue(rep, CodeDuplicateOffering, "F 1") {
		t.Errorf("missing duplicate-offering warning in %s", issueCodes(rep))
	}
	if rep.Warnings != 1 {
		t.Errorf("Warnings = %d, want 1 (duplicate offering only)", rep.Warnings)
	}
	// Errors come first in the issue ordering.
	for i, is := range rep.Issues {
		if is.Severity == Warning && i < rep.Errors {
			t.Errorf("warning at position %d before all %d errors", i, rep.Errors)
		}
	}
	if got := strings.Join(Report.ErrorCourses(rep), ","); got != "A 1,B 1,C 1,D 1,E 1" {
		t.Errorf("ErrorCourses = %s", got)
	}
}

// TestQuarantineSpecsFixpoint: dropping a record can orphan references to
// it; quarantine iterates until the survivors are clean.
func TestQuarantineSpecsFixpoint(t *testing.T) {
	specs := []catalog.CourseSpec{
		spec("A 1", "", "Fall 2012"),
		spec("B 1", "X 9", "Fall 2012"), // dangling: dropped in round 1
		spec("C 1", "B 1", "Fall 2012"), // orphaned by B 1's drop: round 2
		spec("D 1", "A 1", "Fall 2012"),
	}
	clean, quarantined, issues := QuarantineSpecs(term.TwoSeason, specs)
	if got := strings.Join(quarantined, ","); got != "B 1,C 1" {
		t.Errorf("quarantined = %s, want B 1,C 1 (cascade order)", got)
	}
	var ids []string
	for _, sp := range clean {
		ids = append(ids, sp.ID)
	}
	if got := strings.Join(ids, ","); got != "A 1,D 1" {
		t.Errorf("survivors = %s", got)
	}
	if len(issues) != 2 {
		t.Errorf("issues = %v, want one per dropped record", issues)
	}
	// The contract: survivors re-check clean, and they build.
	if rep := CheckSpecs(term.TwoSeason, clean); !rep.OK() {
		t.Errorf("survivors still fail CheckSpecs: %s", rep.Summary())
	}
	if _, err := catalog.FromSpecs(term.TwoSeason, clean); err != nil {
		t.Errorf("survivors do not build: %v", err)
	}
}

func TestQuarantineSpecsCleanInput(t *testing.T) {
	specs := []catalog.CourseSpec{spec("A 1", "", "Fall 2012"), spec("B 1", "A 1", "Spring 2013")}
	clean, quarantined, issues := QuarantineSpecs(term.TwoSeason, specs)
	if len(clean) != 2 || len(quarantined) != 0 || len(issues) != 0 {
		t.Errorf("clean input disturbed: %d specs, quarantined %v, issues %v", len(clean), quarantined, issues)
	}
}

func buildCatalog(t *testing.T, specs []catalog.CourseSpec) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.FromSpecs(term.TwoSeason, specs)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestCheckCycle: a mandatory-prerequisite cycle makes its members
// unreachable — error-severity issues that gate a reload.
func TestCheckCycle(t *testing.T) {
	cat := buildCatalog(t, []catalog.CourseSpec{
		spec("A 1", "B 1", "Fall 2012"),
		spec("B 1", "A 1", "Spring 2013"),
		spec("C 1", "", "Fall 2012"),
	})
	rep := Check(cat)
	if rep.OK() {
		t.Fatalf("cyclic catalog passed: %s", rep.Summary())
	}
	if !hasIssue(rep, CodeUnreachable, "A 1") || !hasIssue(rep, CodeUnreachable, "B 1") {
		t.Errorf("missing unreachable issues in %s", issueCodes(rep))
	}
	if !hasIssue(rep, CodePrereqCycle, "A 1") {
		t.Errorf("missing prereq-cycle issue in %s", issueCodes(rep))
	}
	for _, is := range rep.Issues {
		if is.Code == CodePrereqCycle {
			if is.Severity != Error {
				t.Errorf("cycle with unreachable members graded %s, want error", is.Severity)
			}
			if strings.Join(is.Related, ",") != "A 1,B 1" {
				t.Errorf("cycle members = %v", is.Related)
			}
		}
	}
}

// TestCheckCycleWithEscape: a cycle an OR-alternative can break is
// survivable — warning, not error, so the catalog still serves.
func TestCheckCycleWithEscape(t *testing.T) {
	cat := buildCatalog(t, []catalog.CourseSpec{
		spec("A 1", "B 1 or C 1", "Fall 2012", "Spring 2013"),
		spec("B 1", "A 1", "Spring 2013"),
		spec("C 1", "", "Fall 2012"),
	})
	rep := Check(cat)
	if !rep.OK() {
		t.Fatalf("escapable cycle gated the catalog: %s", rep.Summary())
	}
	found := false
	for _, is := range rep.Issues {
		if is.Code == CodePrereqCycle && is.Severity == Warning {
			found = true
		}
	}
	if !found {
		t.Errorf("missing cycle warning in %s", issueCodes(rep))
	}
}

// TestCheckNeverOffered: never-offered courses and prerequisites that
// depend on them are advisory.
func TestCheckNeverOffered(t *testing.T) {
	cat := buildCatalog(t, []catalog.CourseSpec{
		spec("A 1", ""), // never offered
		spec("B 1", "A 1", "Fall 2012"),
	})
	rep := Check(cat)
	if !rep.OK() {
		t.Fatalf("never-offered graded as error: %s", rep.Summary())
	}
	if !hasIssue(rep, CodeNeverOffered, "A 1") || !hasIssue(rep, CodePrereqNeverOffered, "B 1") {
		t.Errorf("missing never-offered issues in %s", issueCodes(rep))
	}
}

// TestCheckScheduleInfeasible: a mandatory prerequisite never offered
// before the course's last offering is flagged (warning: the student may
// carry transfer credit from before the window).
func TestCheckScheduleInfeasible(t *testing.T) {
	cat := buildCatalog(t, []catalog.CourseSpec{
		spec("P 1", "", "Fall 2013"),
		spec("C 1", "P 1", "Fall 2012"),
	})
	rep := Check(cat)
	if !rep.OK() {
		t.Fatalf("infeasible schedule graded as error: %s", rep.Summary())
	}
	if !hasIssue(rep, CodeScheduleInfeasible, "C 1") {
		t.Errorf("missing schedule-infeasible in %s", issueCodes(rep))
	}

	// The same pair with a workable ordering raises nothing.
	ok := buildCatalog(t, []catalog.CourseSpec{
		spec("P 1", "", "Fall 2012"),
		spec("C 1", "P 1", "Spring 2013"),
	})
	if rep := Check(ok); len(rep.Issues) != 0 {
		t.Errorf("feasible catalog flagged: %s", issueCodes(rep))
	}

	// An OR-alternative makes the prerequisite non-mandatory: no flag.
	alt := buildCatalog(t, []catalog.CourseSpec{
		spec("P 1", "", "Fall 2013"),
		spec("Q 1", "", "Fall 2012"),
		spec("C 1", "P 1 or Q 1", "Fall 2012", "Spring 2013"),
	})
	if rep := Check(alt); hasIssue(rep, CodeScheduleInfeasible, "C 1") {
		t.Errorf("non-mandatory prerequisite flagged: %s", issueCodes(rep))
	}
}

func TestReportSummaryAndJSONShape(t *testing.T) {
	rep := Report{Courses: 38, Errors: 2, Warnings: 1}
	if got := rep.Summary(); got != "2 errors, 1 warnings in 38 courses" {
		t.Errorf("Summary = %q", got)
	}
	if rep.OK() {
		t.Error("report with errors is OK")
	}
	if !(Report{Courses: 3}).OK() {
		t.Error("clean report not OK")
	}
}

// Package integrity validates course catalogs before they are served.
//
// Real course-prerequisite networks are full of structural defects —
// dangling references, prerequisite cycles, courses that are required but
// never offered — and the networks change term over term, so every
// ingestion and every hot reload must prove the data it is about to
// publish. The package offers two gates:
//
//   - CheckSpecs validates serialised course specs before a catalog is
//     built: syntax of prerequisite expressions, duplicate IDs, dangling
//     prerequisite references, unparseable term labels. Spec-level errors
//     would make catalog.FromSpecs fail outright; checking first lets a
//     lenient importer quarantine exactly the offending records and build
//     from the rest.
//
//   - Check validates a built catalog: prerequisite cycles, logically
//     unreachable courses, never-offered courses (and prerequisites that
//     depend on them), and schedule infeasibility — a course whose
//     mandatory prerequisite is never offered strictly before any of the
//     course's own offerings can never be taken even though its logic is
//     sound.
//
// Both return a machine-readable Report with severity levels. A Report
// with no error-severity issues is a pass; warnings are advisory.
package integrity

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/term"
)

// Severity grades an Issue.
type Severity string

const (
	// Warning marks data that is suspicious but servable.
	Warning Severity = "warning"
	// Error marks data that must not be served.
	Error Severity = "error"
)

// Issue codes reported by CheckSpecs and Check.
const (
	CodeDuplicate          = "duplicate-course"
	CodeBadID              = "bad-course-id"
	CodePrereqSyntax       = "prereq-syntax"
	CodeDanglingPrereq     = "dangling-prereq"
	CodeSelfPrereq         = "self-prereq"
	CodeBadTerm            = "bad-term"
	CodeDuplicateOffering  = "duplicate-offering"
	CodePrereqCycle        = "prereq-cycle"
	CodeUnreachable        = "unreachable"
	CodeNeverOffered       = "never-offered"
	CodePrereqNeverOffered = "prereq-never-offered"
	CodeScheduleInfeasible = "schedule-infeasible"
)

// Issue is one defect found in a catalog or spec set.
type Issue struct {
	// Code is the machine-readable defect class (Code* constants).
	Code string `json:"code"`
	// Severity is Error for defects that must block serving, Warning for
	// advisories.
	Severity Severity `json:"severity"`
	// Course is the course the defect belongs to, when attributable.
	Course string `json:"course,omitempty"`
	// Related lists other courses involved (cycle members, missing
	// references, …).
	Related []string `json:"related,omitempty"`
	// Detail describes the defect.
	Detail string `json:"detail"`
}

// String renders the issue for logs.
func (i Issue) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", i.Severity, i.Code)
	if i.Course != "" {
		fmt.Fprintf(&b, " %s", i.Course)
	}
	fmt.Fprintf(&b, ": %s", i.Detail)
	return b.String()
}

// Report is the result of one validation pass.
type Report struct {
	// Courses is the number of courses examined.
	Courses int `json:"courses"`
	// Errors and Warnings count issues per severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	// Issues lists every defect, errors first, then by course.
	Issues []Issue `json:"issues,omitempty"`
}

// OK reports whether the validated data may be served: no error-severity
// issues were found.
func (r Report) OK() bool { return r.Errors == 0 }

// Summary is a one-line human description ("2 errors, 1 warning in 38
// courses").
func (r Report) Summary() string {
	return fmt.Sprintf("%d errors, %d warnings in %d courses", r.Errors, r.Warnings, r.Courses)
}

// ErrorCourses returns the distinct courses carrying error-severity
// issues, sorted. These are the records a lenient importer quarantines.
func (r Report) ErrorCourses() []string {
	seen := map[string]bool{}
	for _, is := range r.Issues {
		if is.Severity == Error && is.Course != "" {
			seen[is.Course] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (r *Report) add(is Issue) {
	if is.Severity == Error {
		r.Errors++
	} else {
		r.Warnings++
	}
	r.Issues = append(r.Issues, is)
}

// finish orders issues deterministically: errors before warnings, then by
// course, then by code.
func (r *Report) finish() {
	sort.SliceStable(r.Issues, func(i, j int) bool {
		a, b := r.Issues[i], r.Issues[j]
		if (a.Severity == Error) != (b.Severity == Error) {
			return a.Severity == Error
		}
		if a.Course != b.Course {
			return a.Course < b.Course
		}
		return a.Code < b.Code
	})
}

// CheckSpecs validates serialised course specs before catalog build. It
// finds exactly the defects that would make catalog.FromSpecs or
// catalog.Build fail — empty/duplicate IDs, unparseable prerequisite
// expressions, dangling prerequisite references, bad term labels — plus
// advisory anomalies (duplicate offerings). A lenient importer drops the
// courses named by Report.ErrorCourses and re-checks until clean; see
// QuarantineSpecs.
func CheckSpecs(cal *term.Calendar, specs []catalog.CourseSpec) Report {
	rep := Report{Courses: len(specs)}
	known := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if sp.ID != "" {
			known[sp.ID] = true
		}
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if sp.ID == "" {
			rep.add(Issue{Code: CodeBadID, Severity: Error, Detail: "course with empty ID"})
			continue
		}
		if seen[sp.ID] {
			rep.add(Issue{Code: CodeDuplicate, Severity: Error, Course: sp.ID,
				Detail: fmt.Sprintf("duplicate course %q", sp.ID)})
			continue
		}
		seen[sp.ID] = true
		if sp.Prereq != "" {
			q, err := expr.Parse(sp.Prereq)
			if err != nil {
				rep.add(Issue{Code: CodePrereqSyntax, Severity: Error, Course: sp.ID,
					Detail: fmt.Sprintf("prerequisite %q: %v", sp.Prereq, err)})
			} else {
				var missing []string
				selfRef := false
				for _, ref := range expr.Courses(q) {
					if ref == sp.ID {
						selfRef = true
					} else if !known[ref] {
						missing = append(missing, ref)
					}
				}
				if selfRef {
					rep.add(Issue{Code: CodeSelfPrereq, Severity: Error, Course: sp.ID,
						Detail: fmt.Sprintf("course %q lists itself as a prerequisite", sp.ID)})
				}
				if len(missing) > 0 {
					rep.add(Issue{Code: CodeDanglingPrereq, Severity: Error, Course: sp.ID,
						Related: missing,
						Detail:  fmt.Sprintf("prerequisite references unknown course(s) %s", strings.Join(missing, ", "))})
				}
			}
		}
		offeredSeen := map[string]bool{}
		for _, lbl := range sp.Offered {
			if _, err := term.Parse(cal, lbl); err != nil {
				rep.add(Issue{Code: CodeBadTerm, Severity: Error, Course: sp.ID,
					Detail: fmt.Sprintf("offering %q: %v", lbl, err)})
				continue
			}
			if offeredSeen[lbl] {
				rep.add(Issue{Code: CodeDuplicateOffering, Severity: Warning, Course: sp.ID,
					Detail: fmt.Sprintf("offering %q listed more than once", lbl)})
			}
			offeredSeen[lbl] = true
		}
	}
	rep.finish()
	return rep
}

// QuarantineSpecs drops every spec CheckSpecs attributes an error to,
// re-checking until a fixpoint (dropping a course can orphan references to
// it). It returns the surviving specs, the quarantined course IDs in drop
// order, and the spec-level issues that caused each drop. The survivors
// are guaranteed to pass CheckSpecs with no errors.
func QuarantineSpecs(cal *term.Calendar, specs []catalog.CourseSpec) (clean []catalog.CourseSpec, quarantined []string, issues []Issue) {
	clean = specs
	for {
		rep := CheckSpecs(cal, clean)
		if rep.OK() {
			return clean, quarantined, issues
		}
		drop := map[string]bool{}
		for _, id := range rep.ErrorCourses() {
			drop[id] = true
		}
		for _, is := range rep.Issues {
			if is.Severity == Error {
				issues = append(issues, is)
			}
		}
		quarantined = append(quarantined, rep.ErrorCourses()...)
		kept := make([]catalog.CourseSpec, 0, len(clean))
		dropped := false
		for _, sp := range clean {
			// Duplicate IDs: drop every record with the ID, the data is
			// ambiguous. Empty-ID records carry no course name and are
			// dropped unconditionally.
			if sp.ID == "" || drop[sp.ID] {
				dropped = true
				continue
			}
			kept = append(kept, sp)
		}
		if !dropped {
			// Errors not attributable to a course (shouldn't happen):
			// give up rather than loop forever.
			return kept, quarantined, issues
		}
		clean = kept
	}
}

// Check validates a built catalog: the structural and temporal defects
// that survive catalog.Build. Cycles through mandatory prerequisites and
// logically unreachable courses are errors; never-offered courses and
// cycles that OR-alternatives break are warnings.
func Check(cat *catalog.Catalog) Report {
	rep := Report{Courses: cat.Len()}
	n := cat.Len()

	// Unreachable courses: prerequisite logic unsatisfiable even when
	// everything else is completed.
	unreachable := map[string]bool{}
	for _, id := range cat.Unreachable() {
		unreachable[id] = true
		rep.add(Issue{Code: CodeUnreachable, Severity: Error, Course: id,
			Detail: fmt.Sprintf("course %q can never be taken: its prerequisite condition is unsatisfiable", id)})
	}

	// Reference graph over dense indexes: an edge i→j when course i's
	// prerequisite references course j.
	refs := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, id := range expr.Courses(cat.Course(i).Prereq) {
			if j, ok := cat.Index(id); ok {
				refs[i] = append(refs[i], j)
			}
		}
	}

	// Prerequisite cycles: strongly connected components of size > 1 (or
	// self-loops). A cycle whose members are all reachable is survivable
	// via OR-alternatives — warn; a cycle containing unreachable members
	// corroborates the unreachability — error.
	for _, scc := range stronglyConnected(refs) {
		if len(scc) == 1 && !contains(refs[scc[0]], scc[0]) {
			continue
		}
		ids := make([]string, len(scc))
		cyclic := false
		for k, i := range scc {
			ids[k] = cat.ID(i)
			if unreachable[ids[k]] {
				cyclic = true
			}
		}
		sort.Strings(ids)
		sev := Warning
		if cyclic {
			sev = Error
		}
		rep.add(Issue{Code: CodePrereqCycle, Severity: sev, Course: ids[0], Related: ids,
			Detail: fmt.Sprintf("prerequisite cycle among %s", strings.Join(ids, ", "))})
	}

	// Never-offered courses, and prerequisites that depend on them.
	neverOffered := map[string]bool{}
	for _, id := range cat.NeverOffered() {
		neverOffered[id] = true
		rep.add(Issue{Code: CodeNeverOffered, Severity: Warning, Course: id,
			Detail: fmt.Sprintf("course %q is never offered in the published schedule", id)})
	}
	for i := 0; i < n; i++ {
		var dead []string
		for _, id := range expr.Courses(cat.Course(i).Prereq) {
			if neverOffered[id] {
				dead = append(dead, id)
			}
		}
		if len(dead) > 0 {
			sort.Strings(dead)
			rep.add(Issue{Code: CodePrereqNeverOffered, Severity: Warning, Course: cat.ID(i),
				Related: dead,
				Detail: fmt.Sprintf("prerequisite of %q references never-offered course(s) %s",
					cat.ID(i), strings.Join(dead, ", "))})
		}
	}

	// Schedule infeasibility: course c needs mandatory prerequisite p
	// (p appears in every top-level disjunct), but no offering of p
	// precedes any offering of c — within the published window, a student
	// starting fresh can never take c. Advisory only: students may have
	// completed p before the window (transfer credit). Skip courses
	// already flagged unreachable or never-offered.
	for i := 0; i < n; i++ {
		c := cat.Course(i)
		if len(c.Offered) == 0 || unreachable[c.ID] {
			continue
		}
		lastOffering := c.Offered[len(c.Offered)-1]
		for _, pid := range mandatoryPrereqs(c.Prereq) {
			j, ok := cat.Index(pid)
			if !ok || neverOffered[pid] {
				continue
			}
			p := cat.Course(j)
			if len(p.Offered) == 0 {
				continue
			}
			if !p.Offered[0].Before(lastOffering) {
				rep.add(Issue{Code: CodeScheduleInfeasible, Severity: Warning, Course: c.ID,
					Related: []string{pid},
					Detail: fmt.Sprintf("course %q requires %q, but %q is never offered before %q's last offering (%s)",
						c.ID, pid, pid, c.ID, lastOffering.Label())})
			}
		}
	}

	rep.finish()
	return rep
}

// mandatoryPrereqs returns the course IDs that appear in every
// top-level disjunct of q — prerequisites no alternative avoids.
func mandatoryPrereqs(q expr.Expr) []string {
	if q == nil {
		return nil
	}
	clauses := disjuncts(q)
	if len(clauses) == 0 {
		return nil
	}
	counts := map[string]int{}
	for _, cl := range clauses {
		for _, id := range expr.Courses(cl) {
			counts[id]++
		}
	}
	var out []string
	for id, c := range counts {
		if c == len(clauses) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// disjuncts splits q into its top-level OR alternatives.
func disjuncts(q expr.Expr) []expr.Expr {
	switch t := q.(type) {
	case expr.True:
		return nil
	case expr.Or:
		return t.Terms
	default:
		return []expr.Expr{q}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// stronglyConnected returns the strongly connected components of the
// digraph (Tarjan, iterative), components in reverse topological order.
func stronglyConnected(adj [][]int) [][]int {
	n := len(adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		comps   [][]int
		counter int
	)
	type frame struct {
		v, edge int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.edge == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.edge < len(adj[v]) {
				w := adj[v][f.edge]
				f.edge++
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

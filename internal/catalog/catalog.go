// Package catalog models the registrar data CourseNavigator explores: the
// course set C, each course's prerequisite condition Q and schedule S, and
// the derived queries the path-generation algorithms issue in their inner
// loops (which courses are offered in a semester, which of those a student
// with completed set X may take).
//
// A Catalog assigns every course a dense index so that course sets are
// bitsets and prerequisite conditions are compiled DNF clause sets
// (see internal/expr and internal/bitset).
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/expr"
	"repro/internal/term"
)

// Course describes one course as provided by the registrar back-end.
type Course struct {
	// ID is the registrar identifier, e.g. "COSI 11A". Unique per catalog.
	ID string
	// Title is the human-readable course title.
	Title string
	// Prereq is the prerequisite condition Q. nil means no prerequisite.
	Prereq expr.Expr
	// Offered lists the semesters the course is offered (the schedule S).
	Offered []term.Term
	// Workload is the estimated weekly effort in hours, the paper's w(c),
	// as reported by past students. Zero means unknown.
	Workload float64
}

// Catalog is an immutable, indexed course catalog. Build one with Builder.
type Catalog struct {
	cal      *term.Calendar
	courses  []Course
	byID     map[string]int
	// foldID maps a case-folded course ID to its dense index, for
	// Canonical. IDs whose folded forms collide are left out, so folded
	// lookup never guesses between distinct courses.
	foldID   map[string]int
	compiled []expr.Compiled
	// offered maps a term ordinal to the set of courses offered that term.
	offered map[int]bitset.Set
	// suffix[i] is the union of offerings in all recorded terms with
	// ordinal >= minOrd+i, and prefix[i] the union with ordinal <=
	// minOrd+i; both serve availability pruning, see OfferedFrom.
	minOrd, maxOrd int
	suffix         []bitset.Set
	prefix         []bitset.Set
}

// Builder accumulates courses and produces a validated Catalog.
type Builder struct {
	cal     *term.Calendar
	courses []Course
	seen    map[string]int
	err     error
}

// NewBuilder returns a Builder for catalogs over the given academic
// calendar.
func NewBuilder(cal *term.Calendar) *Builder {
	return &Builder{cal: cal, seen: map[string]int{}}
}

// Add appends a course. Errors (duplicate ID, foreign-calendar offerings)
// are deferred to Build.
func (b *Builder) Add(c Course) *Builder {
	if b.err != nil {
		return b
	}
	if c.ID == "" {
		b.err = fmt.Errorf("catalog: course with empty ID")
		return b
	}
	if _, dup := b.seen[c.ID]; dup {
		b.err = fmt.Errorf("catalog: duplicate course %q", c.ID)
		return b
	}
	for _, t := range c.Offered {
		if t.IsZero() || t.Calendar() != b.cal {
			b.err = fmt.Errorf("catalog: course %q offered in term from a different calendar", c.ID)
			return b
		}
	}
	if c.Prereq == nil {
		c.Prereq = expr.True{}
	}
	c.Offered = append([]term.Term(nil), c.Offered...)
	sort.Slice(c.Offered, func(i, j int) bool { return c.Offered[i].Before(c.Offered[j]) })
	b.seen[c.ID] = len(b.courses)
	b.courses = append(b.courses, c)
	return b
}

// Build validates the accumulated courses and returns the Catalog. Every
// prerequisite must reference only courses in the catalog.
func (b *Builder) Build() (*Catalog, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.courses) == 0 {
		return nil, fmt.Errorf("catalog: no courses")
	}
	n := len(b.courses)
	cat := &Catalog{
		cal:      b.cal,
		courses:  append([]Course(nil), b.courses...),
		byID:     make(map[string]int, n),
		compiled: make([]expr.Compiled, n),
		offered:  map[int]bitset.Set{},
		minOrd:   -1,
		maxOrd:   -1,
	}
	for i, c := range cat.courses {
		cat.byID[c.ID] = i
	}
	cat.foldID = make(map[string]int, n)
	for i, c := range cat.courses {
		f := strings.ToUpper(c.ID)
		if prev, dup := cat.foldID[f]; dup {
			// Two IDs differing only in case: folded lookup is ambiguous,
			// so neither resolves case-insensitively.
			if prev >= 0 {
				cat.foldID[f] = -1
			}
			continue
		}
		cat.foldID[f] = i
	}
	index := func(id string) (int, error) {
		i, ok := cat.byID[id]
		if !ok {
			return 0, fmt.Errorf("catalog: prerequisite references unknown course %q", id)
		}
		return i, nil
	}
	for i, c := range cat.courses {
		comp, err := expr.Compile(c.Prereq, n, index)
		if err != nil {
			return nil, fmt.Errorf("catalog: course %q: %v", c.ID, err)
		}
		cat.compiled[i] = comp
		for _, t := range c.Offered {
			o := t.Ordinal()
			s, ok := cat.offered[o]
			if !ok {
				s = bitset.New(n)
				cat.offered[o] = s
			}
			s.Add(i)
			cat.offered[o] = s
			if cat.minOrd < 0 || o < cat.minOrd {
				cat.minOrd = o
			}
			if o > cat.maxOrd {
				cat.maxOrd = o
			}
		}
	}
	cat.buildSuffix()
	return cat, nil
}

// buildSuffix precomputes, for every recorded ordinal o, the union of all
// offerings at ordinals >= o (suffix) and <= o (prefix).
func (c *Catalog) buildSuffix() {
	if c.minOrd < 0 {
		return
	}
	n := len(c.courses)
	width := c.maxOrd - c.minOrd + 1
	c.suffix = make([]bitset.Set, width+1)
	c.suffix[width] = bitset.New(n)
	for i := width - 1; i >= 0; i-- {
		u := c.suffix[i+1].Clone()
		if s, ok := c.offered[c.minOrd+i]; ok {
			u.UnionInPlace(s)
		}
		c.suffix[i] = u
	}
	c.prefix = make([]bitset.Set, width)
	for i := 0; i < width; i++ {
		var u bitset.Set
		if i == 0 {
			u = bitset.New(n)
		} else {
			u = c.prefix[i-1].Clone()
		}
		if s, ok := c.offered[c.minOrd+i]; ok {
			u.UnionInPlace(s)
		}
		c.prefix[i] = u
	}
}

// MustBuild is Build but panics on error; intended for embedded datasets
// and tests.
func (b *Builder) MustBuild() *Catalog {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// Calendar returns the academic calendar the catalog's schedule uses.
func (c *Catalog) Calendar() *term.Calendar { return c.cal }

// Len returns the number of courses.
func (c *Catalog) Len() int { return len(c.courses) }

// Course returns the course at dense index i.
func (c *Catalog) Course(i int) Course { return c.courses[i] }

// Index returns the dense index of a course ID.
func (c *Catalog) Index(id string) (int, bool) {
	i, ok := c.byID[id]
	return i, ok
}

// MustIndex is Index but panics when the ID is unknown.
func (c *Catalog) MustIndex(id string) int {
	i, ok := c.byID[id]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown course %q", id))
	}
	return i
}

// Canonical resolves a possibly sloppily-cased course ID to the catalog's
// spelling. An exact match always wins (and keeps its spelling even when
// another ID folds to the same string); otherwise a case-insensitive match
// resolves only when it is unambiguous. ok is false for unknown IDs — the
// caller decides whether that is an error.
func (c *Catalog) Canonical(id string) (string, bool) {
	if _, ok := c.byID[id]; ok {
		return id, true
	}
	if i, ok := c.foldID[strings.ToUpper(id)]; ok && i >= 0 {
		return c.courses[i].ID, true
	}
	return id, false
}

// ID returns the course ID at dense index i.
func (c *Catalog) ID(i int) string { return c.courses[i].ID }

// IDs converts a course bitset to sorted course IDs.
func (c *Catalog) IDs(s bitset.Set) []string {
	out := make([]string, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, c.courses[i].ID) })
	return out
}

// SetOf builds a course bitset from IDs, failing on unknown IDs.
func (c *Catalog) SetOf(ids ...string) (bitset.Set, error) {
	s := bitset.New(len(c.courses))
	for _, id := range ids {
		i, ok := c.byID[id]
		if !ok {
			return bitset.Set{}, fmt.Errorf("catalog: unknown course %q", id)
		}
		s.Add(i)
	}
	return s, nil
}

// MustSetOf is SetOf but panics on unknown IDs.
func (c *Catalog) MustSetOf(ids ...string) bitset.Set {
	s, err := c.SetOf(ids...)
	if err != nil {
		panic(err)
	}
	return s
}

// Compiled returns the compiled prerequisite condition of course i.
func (c *Catalog) Compiled(i int) expr.Compiled { return c.compiled[i] }

// PrereqSatisfied reports whether completed set x satisfies course i's
// prerequisite condition.
func (c *Catalog) PrereqSatisfied(i int, x bitset.Set) bool {
	return c.compiled[i].Satisfied(x)
}

// OfferedIn returns the set of courses offered in term t. The returned set
// must not be mutated.
func (c *Catalog) OfferedIn(t term.Term) bitset.Set {
	if s, ok := c.offered[t.Ordinal()]; ok {
		return s
	}
	return bitset.Set{}
}

// OfferedFrom returns the union of course offerings over every term in
// [from, to] (inclusive). The returned set must not be mutated. This is the
// C_offered quantity of the course-availability pruning strategy.
func (c *Catalog) OfferedFrom(from, to term.Term) bitset.Set {
	if c.minOrd < 0 || from.After(to) {
		return bitset.Set{}
	}
	lo, hi := from.Ordinal(), to.Ordinal()
	if hi < c.minOrd || lo > c.maxOrd {
		return bitset.Set{}
	}
	if lo < c.minOrd {
		lo = c.minOrd
	}
	if hi >= c.maxOrd {
		// Suffix union from lo covers everything to the end of the schedule.
		return c.suffix[lo-c.minOrd]
	}
	if lo <= c.minOrd {
		// Prefix union up to hi covers everything from the schedule start.
		return c.prefix[hi-c.minOrd]
	}
	// Rare general case: accumulate term by term.
	n := len(c.courses)
	u := bitset.New(n)
	for o := lo; o <= hi; o++ {
		if s, ok := c.offered[o]; ok {
			u.UnionInPlace(s)
		}
	}
	return u
}

// FirstTerm returns the earliest term with any offering, or a zero Term if
// the schedule is empty.
func (c *Catalog) FirstTerm() term.Term {
	return c.termAt(c.minOrd)
}

// LastTerm returns the latest term with any offering, or a zero Term if the
// schedule is empty.
func (c *Catalog) LastTerm() term.Term {
	return c.termAt(c.maxOrd)
}

func (c *Catalog) termAt(ord int) term.Term {
	if ord < 0 {
		return term.Term{}
	}
	// Reconstruct a Term with the catalog's calendar at the given ordinal.
	base := c.cal.MustTerm(ord/c.cal.TermsPerYear(), c.cal.Seasons()[ord%c.cal.TermsPerYear()])
	return base
}

// Options computes the paper's course-option set Y for a student with
// completed courses x in semester t:
//
//	Y = { c ∈ C − x | Q_c(x) ∧ t ∈ S_c }
//
// The result is a fresh set the caller may mutate.
func (c *Catalog) Options(x bitset.Set, t term.Term) bitset.Set {
	avail := c.OfferedIn(t).Diff(x)
	if avail.Empty() {
		return avail
	}
	// Drop offered courses whose prerequisites x does not satisfy.
	avail.ForEach(func(i int) {
		if !c.compiled[i].Satisfied(x) {
			avail.Remove(i)
		}
	})
	return avail
}

// OptionsArena is Options drawing the result's storage from a. The
// exploration engines call it once per node visited, so the arena turns a
// per-node allocation into a per-chunk one.
func (c *Catalog) OptionsArena(a *bitset.Arena, x bitset.Set, t term.Term) bitset.Set {
	avail := a.Diff(c.OfferedIn(t), x)
	if avail.Empty() {
		return avail
	}
	avail.ForEach(func(i int) {
		if !c.compiled[i].Satisfied(x) {
			avail.Remove(i)
		}
	})
	return avail
}

// Unreachable returns the IDs of courses that can never be taken regardless
// of schedule: courses whose prerequisite condition is unsatisfiable even if
// the student completed every other reachable course. It is a lint for
// registrar data (e.g. mutually-recursive prerequisites).
func (c *Catalog) Unreachable() []string {
	n := len(c.courses)
	reach := bitset.New(n)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !reach.Contains(i) && c.compiled[i].Satisfied(reach) {
				reach.Add(i)
				changed = true
			}
		}
	}
	var out []string
	for i := 0; i < n; i++ {
		if !reach.Contains(i) {
			out = append(out, c.courses[i].ID)
		}
	}
	return out
}

// NeverOffered returns the IDs of courses with an empty schedule.
func (c *Catalog) NeverOffered() []string {
	var out []string
	for _, course := range c.courses {
		if len(course.Offered) == 0 {
			out = append(out, course.ID)
		}
	}
	return out
}

// Workloads returns the per-index workload vector w.
func (c *Catalog) Workloads() []float64 {
	out := make([]float64, len(c.courses))
	for i, course := range c.courses {
		out[i] = course.Workload
	}
	return out
}

package catalog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/expr"
	"repro/internal/term"
)

var (
	f11 = term.TwoSeason.MustTerm(2011, Fall())
	s12 = f11.Next()
	f12 = s12.Next()
	s13 = f12.Next()
)

func Fall() term.Season { return term.Fall }

// paperCatalog is the 3-course example of the paper's Figure 3:
// C = {11A, 29A, 21A}; 21A requires 11A;
// S_11A = S_29A = {Fall'11, Fall'12}, S_21A = {Spring'12}.
func paperCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "11A", Offered: []term.Term{f11, f12}}).
		Add(Course{ID: "29A", Offered: []term.Term{f11, f12}}).
		Add(Course{ID: "21A", Prereq: expr.MustParse("11A"), Offered: []term.Term{s12}}).
		Build()
	if err != nil {
		t.Fatalf("paperCatalog: %v", err)
	}
	return cat
}

func TestBuilderBasics(t *testing.T) {
	cat := paperCatalog(t)
	if cat.Len() != 3 {
		t.Fatalf("Len = %d", cat.Len())
	}
	if got := cat.ID(cat.MustIndex("29A")); got != "29A" {
		t.Errorf("index round-trip = %q", got)
	}
	if _, ok := cat.Index("nope"); ok {
		t.Error("unknown ID found")
	}
	if cat.Calendar() != term.TwoSeason {
		t.Error("calendar not preserved")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(term.TwoSeason).Build(); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := NewBuilder(term.TwoSeason).Add(Course{ID: ""}).Build(); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1"}).Add(Course{ID: "A1"}).Build(); err == nil {
		t.Error("duplicate ID accepted")
	}
	summer := term.ThreeSeason.MustTerm(2012, term.Summer)
	if _, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1", Offered: []term.Term{summer}}).Build(); err == nil {
		t.Error("foreign-calendar term accepted")
	}
	if _, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1", Offered: []term.Term{{}}}).Build(); err == nil {
		t.Error("zero term accepted")
	}
	if _, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1", Prereq: expr.MustParse("GHOST 1")}).Build(); err == nil {
		t.Error("unknown prerequisite accepted")
	}
	// Error from Add sticks through subsequent Adds.
	b := NewBuilder(term.TwoSeason).Add(Course{ID: ""}).Add(Course{ID: "B1"})
	if _, err := b.Build(); err == nil {
		t.Error("sticky error lost")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	NewBuilder(term.TwoSeason).MustBuild()
}

func TestOfferedIn(t *testing.T) {
	cat := paperCatalog(t)
	if got := cat.IDs(cat.OfferedIn(f11)); !reflect.DeepEqual(got, []string{"11A", "29A"}) {
		t.Errorf("OfferedIn(Fall'11) = %v", got)
	}
	if got := cat.IDs(cat.OfferedIn(s12)); !reflect.DeepEqual(got, []string{"21A"}) {
		t.Errorf("OfferedIn(Spring'12) = %v", got)
	}
	if !cat.OfferedIn(s13).Empty() {
		t.Error("OfferedIn(Spring'13) not empty")
	}
}

func TestOfferedFrom(t *testing.T) {
	cat := paperCatalog(t)
	all := cat.MustSetOf("11A", "29A", "21A")
	if got := cat.OfferedFrom(f11, s13); !got.Equal(all) {
		t.Errorf("OfferedFrom full = %v", cat.IDs(got))
	}
	if got := cat.OfferedFrom(s12, s12); !got.Equal(cat.MustSetOf("21A")) {
		t.Errorf("OfferedFrom(Spring'12) = %v", cat.IDs(got))
	}
	if got := cat.OfferedFrom(f12, s13); !got.Equal(cat.MustSetOf("11A", "29A")) {
		t.Errorf("OfferedFrom(Fall'12..) = %v", cat.IDs(got))
	}
	if !cat.OfferedFrom(s13, s13).Empty() {
		t.Error("OfferedFrom beyond schedule not empty")
	}
	if !cat.OfferedFrom(f12, f11).Empty() {
		t.Error("reversed OfferedFrom not empty")
	}
	// Starting before the schedule clips to the schedule.
	f10 := f11.Add(-2)
	if got := cat.OfferedFrom(f10, f11); !got.Equal(cat.MustSetOf("11A", "29A")) {
		t.Errorf("clipped OfferedFrom = %v", cat.IDs(got))
	}
}

func TestFirstLastTerm(t *testing.T) {
	cat := paperCatalog(t)
	if !cat.FirstTerm().Equal(f11) {
		t.Errorf("FirstTerm = %v", cat.FirstTerm())
	}
	if !cat.LastTerm().Equal(f12) {
		t.Errorf("LastTerm = %v", cat.LastTerm())
	}
}

func TestOptionsPaperFigure3(t *testing.T) {
	cat := paperCatalog(t)
	empty := bitset.New(3)
	// At n1 (Fall '11, X = {}): options are 11A and 29A.
	if got := cat.IDs(cat.Options(empty, f11)); !reflect.DeepEqual(got, []string{"11A", "29A"}) {
		t.Errorf("Y1 = %v", got)
	}
	// At n4 (Spring '12, X = {29A}): 21A offered but prereq 11A missing.
	x29 := cat.MustSetOf("29A")
	if got := cat.Options(x29, s12); !got.Empty() {
		t.Errorf("Y4 = %v, want empty", cat.IDs(got))
	}
	// At n3 (Spring '12, X = {11A, 29A}): 21A eligible.
	x1129 := cat.MustSetOf("11A", "29A")
	if got := cat.IDs(cat.Options(x1129, s12)); !reflect.DeepEqual(got, []string{"21A"}) {
		t.Errorf("Y3 = %v", got)
	}
	// At n7 (Fall '12, X = {29A}): 11A offered again.
	if got := cat.IDs(cat.Options(x29, f12)); !reflect.DeepEqual(got, []string{"11A"}) {
		t.Errorf("Y7 = %v", got)
	}
	// Completed courses are excluded.
	if got := cat.Options(cat.MustSetOf("11A", "29A", "21A"), f12); !got.Empty() {
		t.Errorf("all-done options = %v", cat.IDs(got))
	}
}

func TestSetOfErrors(t *testing.T) {
	cat := paperCatalog(t)
	if _, err := cat.SetOf("11A", "nope"); err == nil {
		t.Error("unknown ID in SetOf accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSetOf did not panic")
		}
	}()
	cat.MustSetOf("nope")
}

func TestMustIndexPanics(t *testing.T) {
	cat := paperCatalog(t)
	defer func() {
		if recover() == nil {
			t.Error("MustIndex did not panic")
		}
	}()
	cat.MustIndex("nope")
}

func TestUnreachable(t *testing.T) {
	cat, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1", Offered: []term.Term{f11}}).
		Add(Course{ID: "B1", Prereq: expr.MustParse("C1"), Offered: []term.Term{f11}}).
		Add(Course{ID: "C1", Prereq: expr.MustParse("B1"), Offered: []term.Term{f11}}).
		Add(Course{ID: "D1", Prereq: expr.MustParse("A1 or B1"), Offered: []term.Term{f11}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := cat.Unreachable()
	if !reflect.DeepEqual(got, []string{"B1", "C1"}) {
		t.Errorf("Unreachable = %v, want [B1 C1]", got)
	}
	if got := paperCatalog(t).Unreachable(); got != nil {
		t.Errorf("paper catalog Unreachable = %v", got)
	}
}

func TestNeverOffered(t *testing.T) {
	cat, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1", Offered: []term.Term{f11}}).
		Add(Course{ID: "B1"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.NeverOffered(); !reflect.DeepEqual(got, []string{"B1"}) {
		t.Errorf("NeverOffered = %v", got)
	}
}

func TestPrereqSatisfiedAndCompiled(t *testing.T) {
	cat := paperCatalog(t)
	i21 := cat.MustIndex("21A")
	if cat.PrereqSatisfied(i21, bitset.New(3)) {
		t.Error("21A prereq satisfied by empty set")
	}
	if !cat.PrereqSatisfied(i21, cat.MustSetOf("11A")) {
		t.Error("21A prereq not satisfied by {11A}")
	}
	if cat.Compiled(i21).NumClauses() != 1 {
		t.Error("21A compiled clause count wrong")
	}
}

func TestWorkloads(t *testing.T) {
	cat, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1", Workload: 8, Offered: []term.Term{f11}}).
		Add(Course{ID: "B1", Workload: 12.5, Offered: []term.Term{f11}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.Workloads(); !reflect.DeepEqual(got, []float64{8, 12.5}) {
		t.Errorf("Workloads = %v", got)
	}
}

func TestOfferedSorted(t *testing.T) {
	cat, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "A1", Offered: []term.Term{f12, f11}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	off := cat.Course(0).Offered
	if !off[0].Equal(f11) || !off[1].Equal(f12) {
		t.Errorf("Offered not sorted: %v", off)
	}
}

func TestSpecsRoundTrip(t *testing.T) {
	cat := paperCatalog(t)
	specs := cat.Specs()
	if len(specs) != 3 {
		t.Fatalf("Specs len = %d", len(specs))
	}
	// 11A has no prereq -> empty Prereq field.
	if specs[0].Prereq != "" {
		t.Errorf("11A Prereq = %q", specs[0].Prereq)
	}
	if specs[2].Prereq != "11A" {
		t.Errorf("21A Prereq = %q", specs[2].Prereq)
	}
	if !reflect.DeepEqual(specs[0].Offered, []string{"Fall 2011", "Fall 2012"}) {
		t.Errorf("11A Offered = %v", specs[0].Offered)
	}
	back, err := FromSpecs(term.TwoSeason, specs)
	if err != nil {
		t.Fatalf("FromSpecs: %v", err)
	}
	if back.Len() != cat.Len() {
		t.Fatalf("round-trip Len = %d", back.Len())
	}
	for i := 0; i < cat.Len(); i++ {
		a, b := cat.Course(i), back.Course(i)
		if a.ID != b.ID || a.Prereq.String() != b.Prereq.String() || len(a.Offered) != len(b.Offered) {
			t.Errorf("course %d round-trip mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cat := paperCatalog(t)
	var buf bytes.Buffer
	if err := cat.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(term.TwoSeason, &buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.Len() != 3 {
		t.Errorf("ReadJSON Len = %d", back.Len())
	}
	if _, err := ReadJSON(term.TwoSeason, strings.NewReader("not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ReadJSON(term.TwoSeason, strings.NewReader(`[{"id":"X1","offered":["Winter 2011"]}]`)); err == nil {
		t.Error("bad term label accepted")
	}
	if _, err := ReadJSON(term.TwoSeason, strings.NewReader(`[{"id":"X1","prereq":"(((","offered":[]}]`)); err == nil {
		t.Error("bad prereq accepted")
	}
}

func BenchmarkOptionsHotPath(b *testing.B) {
	// The Y-computation Algorithm 1 performs at every node.
	cat := paperCatalogB(b)
	x := cat.MustSetOf("11A")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cat.Options(x, s12).Empty() {
			b.Fatal("no options")
		}
	}
}

func paperCatalogB(b *testing.B) *Catalog {
	b.Helper()
	cat, err := NewBuilder(term.TwoSeason).
		Add(Course{ID: "11A", Offered: []term.Term{f11, f12}}).
		Add(Course{ID: "29A", Offered: []term.Term{f11, f12}}).
		Add(Course{ID: "21A", Prereq: expr.MustParse("11A"), Offered: []term.Term{s12}}).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

func BenchmarkOfferedFromSuffix(b *testing.B) {
	cat := paperCatalogB(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cat.OfferedFrom(f11, s13).Empty() {
			b.Fatal("empty union")
		}
	}
}

package catalog

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/expr"
	"repro/internal/term"
)

// CourseSpec is the serialisable form of a Course, as produced by the
// registrar parsers and consumed by the HTTP service and CLI. Prereq uses
// the textual prerequisite language of internal/expr; Offered uses term
// labels ("Fall 2011").
type CourseSpec struct {
	ID       string   `json:"id"`
	Title    string   `json:"title,omitempty"`
	Prereq   string   `json:"prereq,omitempty"`
	Offered  []string `json:"offered"`
	Workload float64  `json:"workload,omitempty"`
}

// FromSpecs builds a Catalog from serialised course specs.
func FromSpecs(cal *term.Calendar, specs []CourseSpec) (*Catalog, error) {
	b := NewBuilder(cal)
	for _, sp := range specs {
		q, err := expr.Parse(sp.Prereq)
		if err != nil {
			return nil, fmt.Errorf("catalog: course %q: %v", sp.ID, err)
		}
		offered := make([]term.Term, 0, len(sp.Offered))
		for _, lbl := range sp.Offered {
			t, err := term.Parse(cal, lbl)
			if err != nil {
				return nil, fmt.Errorf("catalog: course %q: %v", sp.ID, err)
			}
			offered = append(offered, t)
		}
		b.Add(Course{
			ID:       sp.ID,
			Title:    sp.Title,
			Prereq:   q,
			Offered:  offered,
			Workload: sp.Workload,
		})
	}
	return b.Build()
}

// Specs returns the serialisable form of every course, in dense-index
// order.
func (c *Catalog) Specs() []CourseSpec {
	out := make([]CourseSpec, len(c.courses))
	for i, course := range c.courses {
		sp := CourseSpec{
			ID:       course.ID,
			Title:    course.Title,
			Workload: course.Workload,
			Offered:  make([]string, len(course.Offered)),
		}
		if _, isTrue := course.Prereq.(expr.True); !isTrue {
			sp.Prereq = course.Prereq.String()
		}
		for j, t := range course.Offered {
			sp.Offered[j] = t.Label()
		}
		out[i] = sp
	}
	return out
}

// WriteJSON serialises the catalog as a JSON array of course specs.
func (c *Catalog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Specs())
}

// ReadJSON builds a catalog from a JSON array of course specs.
func ReadJSON(cal *term.Calendar, r io.Reader) (*Catalog, error) {
	var specs []CourseSpec
	if err := json.NewDecoder(r).Decode(&specs); err != nil {
		return nil, fmt.Errorf("catalog: decoding specs: %v", err)
	}
	return FromSpecs(cal, specs)
}

// Package resultcache caches rendered exploration responses between catalog
// reloads. The paper's interactive setting (§5) makes repeated near-identical
// queries the dominant workload — a student tweaks one knob and re-explores —
// while the underlying catalog changes on semester timescales, so a response
// computed once can serve every identical request until the next reload.
//
// The cache is a cost-aware LRU: the budget is in bytes and each entry is
// charged its materialized body size, so one huge graph response cannot
// silently displace thousands of cheap count summaries without accounting.
// Every key embeds the catalog snapshot generation, which makes invalidation
// O(1): after a reload bumps the generation, old entries can never match a
// new request's key, and Invalidate drops them wholesale.
//
// Concurrent identical misses coalesce: the first request becomes the
// flight leader and runs the exploration, followers block on the flight and
// share the rendered result. A leader that cannot produce a cacheable result
// finishes the flight with nil, and followers fall back to computing
// individually — coalescing is an optimisation, never a correctness gate.
//
// Invalidation retains the displaced generation's entries in a stale side
// table (keyed by request hash alone) for the server's brownout mode:
// when degraded, a request that misses the live cache may be answered from
// the previous snapshot's entry, marked stale, instead of being shed. The
// side table is replaced wholesale on every Invalidate, so it only ever
// holds the immediately preceding generation — staleness is bounded at one
// snapshot generation by construction.
package resultcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// Key identifies one cacheable response: the catalog snapshot generation and
// a digest of the canonicalized request plus the endpoint that handles it.
type Key struct {
	Gen  uint64
	Hash [sha256.Size]byte
}

// KeyFor derives the cache key for a canonicalized request blob hitting
// endpoint (e.g. "goal") under catalog snapshot gen. The endpoint is folded
// into the digest so equal request bodies posted to different endpoints
// (goal vs. deadline) never share an entry.
func KeyFor(gen uint64, endpoint string, canonical []byte) Key {
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(canonical)
	var k Key
	k.Gen = gen
	h.Sum(k.Hash[:0])
	return k
}

// Entry is one cached response: the exact bytes written to the socket plus
// the annotations the usage log records about the run.
type Entry struct {
	// Body is the rendered JSON response, replayed byte-for-byte on a hit.
	Body []byte
	// Paths is the run's generated-path count, re-recorded in the usage
	// event of every replay.
	Paths int64
	// Window is the request's semester window annotation.
	Window string
}

// entryOverhead approximates the per-entry bookkeeping cost (list element,
// map slot, Entry header) charged on top of the body bytes.
const entryOverhead = 256

func (e *Entry) size() int64 { return int64(len(e.Body)) + entryOverhead }

// Flight is one in-progress computation that concurrent identical requests
// share. The leader computes and calls Cache.Finish; followers Wait.
type Flight struct {
	done chan struct{}
	ent  *Entry // written once, before done is closed
}

// Wait blocks until the flight finishes or ctx is done. It returns the
// leader's entry, or nil when the leader produced nothing cacheable (or the
// context fired first) — the caller must then compute individually.
func (f *Flight) Wait(ctx context.Context) *Entry {
	select {
	case <-f.done:
		return f.ent
	case <-ctx.Done():
		return nil
	}
}

// Cache is the snapshot-versioned result cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	gen     uint64
	ll      *list.List // front = most recently used; values are *node
	byKey   map[Key]*list.Element
	bytes   int64
	flights map[Key]*Flight
	stale   map[[sha256.Size]byte]*Entry // previous generation only

	hits, misses, coalesced, evictions, staleHits atomic.Int64
}

type node struct {
	key Key
	ent *Entry
}

// New returns a cache holding at most budget bytes of response bodies.
func New(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		byKey:   map[Key]*list.Element{},
		flights: map[Key]*Flight{},
	}
}

// Get returns the entry for k, if any, marking it most recently used.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k.Gen == c.gen {
		if el, ok := c.byKey[k]; ok {
			c.ll.MoveToFront(el)
			c.hits.Add(1)
			return el.Value.(*node).ent, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores an entry, evicting least-recently-used entries until the byte
// budget holds. Entries from a stale generation (or larger than the whole
// budget) are dropped silently — the catalog they describe is gone.
func (c *Cache) Put(k Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(k, e)
}

func (c *Cache) put(k Key, e *Entry) {
	if e == nil || k.Gen != c.gen || e.size() > c.budget {
		return
	}
	if el, ok := c.byKey[k]; ok {
		old := el.Value.(*node)
		c.bytes += e.size() - old.ent.size()
		old.ent = e
		c.ll.MoveToFront(el)
	} else {
		c.byKey[k] = c.ll.PushFront(&node{key: k, ent: e})
		c.bytes += e.size()
	}
	c.evictToBudget()
}

// evictToBudget drops least-recently-used entries until bytes fit the
// budget. Caller holds mu.
func (c *Cache) evictToBudget() {
	for c.bytes > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		n := el.Value.(*node)
		c.ll.Remove(el)
		delete(c.byKey, n.key)
		c.bytes -= n.ent.size()
		c.evictions.Add(1)
	}
}

// SetBudget changes the byte budget, evicting least-recently-used
// entries until the resident set fits. The multi-tenant server uses it
// to re-carve fair partition shares out of the global budget whenever
// the tenant registry grows or shrinks.
func (c *Cache) SetBudget(budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budget
	c.evictToBudget()
}

// Budget returns the current byte budget.
func (c *Cache) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// Join registers interest in computing k. The first caller becomes the
// leader (leader == true) and must eventually call Finish with the same
// flight; later callers get the existing flight to Wait on.
func (c *Cache) Join(k Key) (f *Flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[k]; ok {
		c.coalesced.Add(1)
		return f, false
	}
	f = &Flight{done: make(chan struct{})}
	c.flights[k] = f
	return f, true
}

// Finish completes a flight: followers wake with e (which may be nil when
// the leader's run turned out uncacheable), and a non-nil e is also stored
// in the cache. The flight is deregistered only if it is still the one
// registered for k — an intervening Invalidate may have replaced the map.
func (c *Cache) Finish(k Key, f *Flight, e *Entry) {
	c.mu.Lock()
	if c.flights[k] == f {
		delete(c.flights, k)
	}
	f.ent = e
	c.put(k, e)
	c.mu.Unlock()
	close(f.done)
}

// Stale returns the previous generation's entry matching k's request hash,
// if one survived the last Invalidate. k must carry the current generation —
// a key minted against an older snapshot gets nothing (its "stale" answer
// would be two or more generations old). The entry replays exactly as it was
// rendered; the caller is responsible for marking the response stale.
func (c *Cache) Stale(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k.Gen != c.gen {
		return nil, false
	}
	e, ok := c.stale[k.Hash]
	if ok {
		c.staleHits.Add(1)
	}
	return e, ok
}

// Invalidate installs a new catalog generation: every cached entry and every
// registered flight belongs to the old snapshot and is dropped from the live
// table. In-flight leaders still Finish their (now unregistered) flights, so
// followers that joined before the reload wake normally; the stale entry is
// rejected by put's generation check.
//
// The dropped generation's entries move to the stale side table, replacing
// whatever it held, so Stale serves at most one generation back.
func (c *Cache) Invalidate(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen = gen
	stale := make(map[[sha256.Size]byte]*Entry, len(c.byKey))
	for k, el := range c.byKey {
		stale[k.Hash] = el.Value.(*node).ent
	}
	c.stale = stale
	c.ll.Init()
	c.byKey = map[Key]*list.Element{}
	c.bytes = 0
	c.flights = map[Key]*Flight{}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Coalesced    int64 `json:"coalesced"`
	Evictions    int64 `json:"evictions"`
	Bytes        int64 `json:"bytes"`
	Entries      int   `json:"entries"`
	StaleEntries int   `json:"staleEntries"`
	StaleHits    int64 `json:"staleHits"`
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes, entries, staleEntries := c.bytes, len(c.byKey), len(c.stale)
	c.mu.Unlock()
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Evictions:    c.evictions.Load(),
		Bytes:        bytes,
		Entries:      entries,
		StaleEntries: staleEntries,
		StaleHits:    c.staleHits.Load(),
	}
}

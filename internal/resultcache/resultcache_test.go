package resultcache

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func key(gen uint64, s string) Key { return KeyFor(gen, "goal", []byte(s)) }

func ent(body string) *Entry { return &Entry{Body: []byte(body), Paths: 1} }

func TestKeyForSeparatesEndpointsAndGenerations(t *testing.T) {
	blob := []byte(`{"query":{}}`)
	if KeyFor(0, "goal", blob) == KeyFor(0, "deadline", blob) {
		t.Fatalf("same key for different endpoints")
	}
	if KeyFor(0, "goal", blob) != KeyFor(0, "goal", blob) {
		t.Fatalf("key not deterministic")
	}
	if KeyFor(0, "goal", blob) == KeyFor(1, "goal", blob) {
		t.Fatalf("same key across generations")
	}
	// The endpoint/body boundary must not be ambiguous.
	if KeyFor(0, "goalx", []byte("y")) == KeyFor(0, "goal", []byte("xy")) {
		t.Fatalf("endpoint/body boundary ambiguous")
	}
}

func TestGetPutHit(t *testing.T) {
	c := New(1 << 20)
	k := key(0, "a")
	if _, ok := c.Get(k); ok {
		t.Fatalf("hit on empty cache")
	}
	c.Put(k, ent("body"))
	got, ok := c.Get(k)
	if !ok || string(got.Body) != "body" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	// Budget fits two entries (body 100 + overhead each), not three.
	c := New(2 * (100 + entryOverhead))
	bodies := make([]byte, 100)
	for i := 0; i < 3; i++ {
		c.Put(key(0, fmt.Sprint(i)), &Entry{Body: bodies})
	}
	if _, ok := c.Get(key(0, "0")); ok {
		t.Fatalf("LRU entry not evicted")
	}
	for _, id := range []string{"1", "2"} {
		if _, ok := c.Get(key(0, id)); !ok {
			t.Fatalf("recent entry %s evicted", id)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The loop above touched "1" then "2", so "1" is now the LRU victim.
	c.Put(key(0, "3"), &Entry{Body: bodies})
	if _, ok := c.Get(key(0, "2")); !ok {
		t.Fatalf("recently used entry evicted")
	}
	if _, ok := c.Get(key(0, "1")); ok {
		t.Fatalf("LRU entry survived")
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New(1 << 20)
	k := key(0, "a")
	c.Put(k, ent("short"))
	c.Put(k, ent("a much longer body than before"))
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("replace duplicated entry: %+v", st)
	}
	if want := int64(len("a much longer body than before")) + entryOverhead; st.Bytes != want {
		t.Fatalf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestPutOversizedAndStaleGenRejected(t *testing.T) {
	c := New(100)
	c.Put(key(0, "big"), &Entry{Body: make([]byte, 200)})
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry stored: %+v", st)
	}
	c.Invalidate(1)
	c.Put(key(0, "old"), ent("x"))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("stale-generation entry stored: %+v", st)
	}
	if _, ok := c.Get(key(0, "old")); ok {
		t.Fatalf("stale-generation key hit")
	}
}

func TestInvalidateDropsEntriesAndFlights(t *testing.T) {
	c := New(1 << 20)
	k := key(0, "a")
	c.Put(k, ent("x"))
	f, leader := c.Join(k)
	if !leader {
		t.Fatalf("first Join not leader")
	}
	c.Invalidate(1)
	if _, ok := c.Get(k); ok {
		t.Fatalf("pre-reload entry survived Invalidate")
	}
	// A new joiner for the old key leads its own flight (old one dropped).
	if _, leader := c.Join(k); !leader {
		t.Fatalf("post-Invalidate Join did not lead")
	}
	// The pre-reload leader still finishes; its entry must not be stored.
	c.Finish(k, f, ent("stale"))
	if e := f.Wait(context.Background()); e == nil || string(e.Body) != "stale" {
		t.Fatalf("pre-reload followers lost the leader's result")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("stale flight result cached: %+v", st)
	}
}

func TestCoalescingFollowersShareResult(t *testing.T) {
	c := New(1 << 20)
	k := key(0, "a")
	lead, leader := c.Join(k)
	if !leader {
		t.Fatalf("first Join not leader")
	}
	const followers = 5
	var wg sync.WaitGroup
	results := make([]*Entry, followers)
	for i := 0; i < followers; i++ {
		f, isLeader := c.Join(k)
		if isLeader {
			t.Fatalf("follower %d became leader", i)
		}
		wg.Add(1)
		go func(i int, f *Flight) {
			defer wg.Done()
			results[i] = f.Wait(context.Background())
		}(i, f)
	}
	c.Finish(k, lead, ent("shared"))
	wg.Wait()
	for i, e := range results {
		if e == nil || string(e.Body) != "shared" {
			t.Fatalf("follower %d result = %v", i, e)
		}
	}
	st := c.Stats()
	if st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatalf("finished flight result not cached")
	}
	// The flight is deregistered: the next Join leads again.
	if _, leader := c.Join(k); !leader {
		t.Fatalf("Join after Finish did not lead")
	}
}

func TestFinishNilWakesFollowersWithoutCaching(t *testing.T) {
	c := New(1 << 20)
	k := key(0, "a")
	lead, _ := c.Join(k)
	f, _ := c.Join(k)
	done := make(chan *Entry, 1)
	go func() { done <- f.Wait(context.Background()) }()
	c.Finish(k, lead, nil)
	if e := <-done; e != nil {
		t.Fatalf("nil Finish delivered an entry: %v", e)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("nil Finish cached something: %+v", st)
	}
}

func TestWaitHonoursContext(t *testing.T) {
	c := New(1 << 20)
	f, _ := c.Join(key(0, "a"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if e := f.Wait(ctx); e != nil {
		t.Fatalf("Wait returned entry after context expiry: %v", e)
	}
}

// Concurrency smoke for the race detector: gets, puts, joins and
// invalidations interleaving freely.
func TestConcurrentMixedUse(t *testing.T) {
	c := New(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(uint64(i%3), fmt.Sprint(i%7))
				if _, ok := c.Get(k); !ok {
					f, leader := c.Join(k)
					if leader {
						c.Finish(k, f, ent("x"))
					} else {
						ctx, cancel := context.WithTimeout(context.Background(), time.Second)
						f.Wait(ctx)
						cancel()
					}
				}
				if w == 0 && i%50 == 0 {
					c.Invalidate(uint64(i % 3))
				}
			}
		}(w)
	}
	wg.Wait()
	c.Stats() // must not race either
}

// TestSetBudgetEvictsToFit: shrinking the budget (the multi-tenant
// fair-share re-carve) evicts LRU entries until the resident set fits,
// keeping the most recently used entries; growing it evicts nothing.
func TestSetBudgetEvictsToFit(t *testing.T) {
	c := New(10 * (entryOverhead + 4))
	for i := 0; i < 10; i++ {
		c.Put(key(0, fmt.Sprintf("k%02d", i)), ent("xxxx"))
	}
	if st := c.Stats(); st.Entries != 10 || st.Evictions != 0 {
		t.Fatalf("warm-up: %+v", st)
	}
	// Touch the three newest-by-use entries so eviction order is pinned.
	for _, s := range []string{"k07", "k08", "k09"} {
		if _, ok := c.Get(key(0, s)); !ok {
			t.Fatalf("warm entry %s missing", s)
		}
	}
	c.SetBudget(3 * (entryOverhead + 4))
	if got := c.Budget(); got != 3*(entryOverhead+4) {
		t.Fatalf("Budget() = %d", got)
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 7 {
		t.Fatalf("after shrink: %+v, want 3 entries / 7 evictions", st)
	}
	for _, s := range []string{"k07", "k08", "k09"} {
		if _, ok := c.Get(key(0, s)); !ok {
			t.Errorf("recently used entry %s evicted by shrink", s)
		}
	}
	// Growing changes nothing until new puts use the headroom.
	c.SetBudget(20 * (entryOverhead + 4))
	if st := c.Stats(); st.Entries != 3 {
		t.Errorf("grow evicted entries: %+v", st)
	}
}

// TestStaleRetainsExactlyOneGeneration: Invalidate moves the displaced
// entries into the stale table; the next Invalidate replaces them, so a
// hash from two generations back gets nothing — staleness is bounded at
// one snapshot generation.
func TestStaleRetainsExactlyOneGeneration(t *testing.T) {
	c := New(1 << 20)
	c.Put(key(0, "survivor"), ent("gen0 body"))
	if _, ok := c.Stale(key(0, "survivor")); ok {
		t.Fatal("stale hit before any invalidation")
	}
	c.Invalidate(1)
	if _, ok := c.Get(key(1, "survivor")); ok {
		t.Fatal("live hit across generations")
	}
	e, ok := c.Stale(key(1, "survivor"))
	if !ok || string(e.Body) != "gen0 body" {
		t.Fatalf("stale = %v, %v; want the gen0 body", e, ok)
	}
	// A key minted against the old generation must not see stale data.
	if _, ok := c.Stale(key(0, "survivor")); ok {
		t.Error("stale served for a non-current-generation key")
	}
	st := c.Stats()
	if st.StaleEntries != 1 || st.StaleHits != 1 {
		t.Errorf("stats = %+v, want 1 stale entry / 1 stale hit", st)
	}
	// Second reload: gen0 entries are gone for good.
	c.Invalidate(2)
	if _, ok := c.Stale(key(2, "survivor")); ok {
		t.Error("entry survived two invalidations — staleness unbounded")
	}
	if st := c.Stats(); st.StaleEntries != 0 {
		t.Errorf("stale entries after empty-gen reload = %d, want 0", st.StaleEntries)
	}
}

// TestStaleMissesUnknownHash: only hashes actually cached in the previous
// generation are served stale.
func TestStaleMissesUnknownHash(t *testing.T) {
	c := New(1 << 20)
	c.Put(key(0, "a"), ent("a body"))
	c.Invalidate(1)
	if _, ok := c.Stale(key(1, "never-cached")); ok {
		t.Error("stale hit for a hash that was never cached")
	}
}

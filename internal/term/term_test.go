package term

import (
	"testing"
	"testing/quick"
)

func TestSeasonString(t *testing.T) {
	cases := []struct {
		s    Season
		want string
	}{
		{Spring, "Spring"},
		{Summer, "Summer"},
		{Fall, "Fall"},
		{Season(9), "Season(9)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Season(%d).String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestParseSeason(t *testing.T) {
	ok := map[string]Season{
		"fall": Fall, "Fall": Fall, "FALL": Fall, "fa": Fall, "f": Fall, "autumn": Fall,
		"spring": Spring, "sp": Spring, "s": Spring, " Spring ": Spring,
		"summer": Summer, "su": Summer,
	}
	for in, want := range ok {
		got, err := ParseSeason(in)
		if err != nil {
			t.Errorf("ParseSeason(%q) error: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSeason(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "winter", "x", "fallish"} {
		if _, err := ParseSeason(bad); err == nil {
			t.Errorf("ParseSeason(%q) succeeded, want error", bad)
		}
	}
}

func TestNewCalendarErrors(t *testing.T) {
	if _, err := NewCalendar(); err == nil {
		t.Error("empty calendar accepted")
	}
	if _, err := NewCalendar(Fall, Fall); err == nil {
		t.Error("duplicate season accepted")
	}
	if _, err := NewCalendar(Fall, Spring); err == nil {
		t.Error("out-of-order seasons accepted")
	}
	if _, err := NewCalendar(Season(7)); err == nil {
		t.Error("invalid season accepted")
	}
}

func TestCalendarBasics(t *testing.T) {
	if got := TwoSeason.TermsPerYear(); got != 2 {
		t.Errorf("TwoSeason.TermsPerYear() = %d, want 2", got)
	}
	if got := ThreeSeason.TermsPerYear(); got != 3 {
		t.Errorf("ThreeSeason.TermsPerYear() = %d, want 3", got)
	}
	if !TwoSeason.Contains(Fall) || !TwoSeason.Contains(Spring) {
		t.Error("TwoSeason missing Fall/Spring")
	}
	if TwoSeason.Contains(Summer) {
		t.Error("TwoSeason should not contain Summer")
	}
	got := TwoSeason.Seasons()
	if len(got) != 2 || got[0] != Spring || got[1] != Fall {
		t.Errorf("TwoSeason.Seasons() = %v", got)
	}
}

func TestTermConstruction(t *testing.T) {
	if _, err := TwoSeason.Term(2011, Summer); err == nil {
		t.Error("Summer accepted by TwoSeason")
	}
	if _, err := TwoSeason.Term(0, Fall); err == nil {
		t.Error("year 0 accepted")
	}
	f11 := TwoSeason.MustTerm(2011, Fall)
	if f11.Year() != 2011 || f11.Season() != Fall {
		t.Errorf("round-trip: got %d %v", f11.Year(), f11.Season())
	}
	if f11.IsZero() {
		t.Error("constructed term reported zero")
	}
	if !(Term{}).IsZero() {
		t.Error("zero term not reported zero")
	}
}

func TestTermSequencePaperExample(t *testing.T) {
	// The Figure 1 sequence: Fall '11 -> Spring '12 -> Fall '12.
	f11 := TwoSeason.MustTerm(2011, Fall)
	s12 := f11.Next()
	f12 := s12.Next()
	if s12.Year() != 2012 || s12.Season() != Spring {
		t.Errorf("Fall'11.Next() = %v", s12)
	}
	if f12.Year() != 2012 || f12.Season() != Fall {
		t.Errorf("Spring'12.Next() = %v", f12)
	}
	if got := f12.Sub(f11); got != 2 {
		t.Errorf("Fall'12 - Fall'11 = %d, want 2", got)
	}
	if !f11.Before(f12) || !f12.After(f11) {
		t.Error("ordering wrong")
	}
	if f12.Prev() != s12 {
		t.Error("Prev broken")
	}
	if f11.Add(2) != f12 {
		t.Error("Add broken")
	}
}

func TestTermCompareEqual(t *testing.T) {
	a := TwoSeason.MustTerm(2012, Spring)
	b := TwoSeason.MustTerm(2012, Spring)
	c := TwoSeason.MustTerm(2012, Fall)
	if !a.Equal(b) || a.Compare(b) != 0 {
		t.Error("equal terms not equal")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("Compare sign wrong")
	}
	// Terms from different calendars are never Equal even at same ordinal.
	d := ThreeSeason.MustTerm(2012, Spring)
	if a.Equal(d) {
		t.Error("cross-calendar terms reported equal")
	}
}

func TestTermString(t *testing.T) {
	f11 := TwoSeason.MustTerm(2011, Fall)
	if got := f11.String(); got != "Fall '11" {
		t.Errorf("String() = %q, want \"Fall '11\"", got)
	}
	if got := f11.Label(); got != "Fall 2011" {
		t.Errorf("Label() = %q, want \"Fall 2011\"", got)
	}
	if got := TwoSeason.MustTerm(2005, Spring).String(); got != "Spring '05" {
		t.Errorf("String() = %q, want \"Spring '05\"", got)
	}
	if got := (Term{}).String(); got != "Term(zero)" {
		t.Errorf("zero String() = %q", got)
	}
	if got := (Term{}).Label(); got != "Term(zero)" {
		t.Errorf("zero Label() = %q", got)
	}
}

func TestParse(t *testing.T) {
	want := TwoSeason.MustTerm(2011, Fall)
	for _, in := range []string{
		"Fall 2011", "fall 2011", "Fall '11", "Fall'11", "fall11",
		"FA2011", "2011 Fall", "fall-2011", "Fall_2011", "Fall,2011", "Fall’11",
	} {
		got, err := Parse(TwoSeason, in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", in, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{
		"", "Fall", "2011", "Winter 2011", "Fall 20111", "Summer 2011", "x y z", "99999",
	} {
		if _, err := Parse(TwoSeason, bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Summer parses under the three-season calendar.
	got, err := Parse(ThreeSeason, "Summer '13")
	if err != nil {
		t.Fatalf("Parse summer: %v", err)
	}
	if got.Season() != Summer || got.Year() != 2013 {
		t.Errorf("Parse summer = %v", got)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(year uint16, pick bool) bool {
		y := 2000 + int(year)%100
		season := Spring
		if pick {
			season = Fall
		}
		tm := TwoSeason.MustTerm(y, season)
		back, err := Parse(TwoSeason, tm.String())
		if err != nil {
			return false
		}
		back2, err := Parse(TwoSeason, tm.Label())
		if err != nil {
			return false
		}
		return back.Equal(tm) && back2.Equal(tm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrdinalDistanceProperty(t *testing.T) {
	// Adding n semesters always advances Ordinal by n and Sub inverts Add.
	f := func(year uint8, n int8) bool {
		tm := TwoSeason.MustTerm(2000+int(year)%50+10, Fall)
		u := tm.Add(int(n))
		return u.Sub(tm) == int(n) && u.Ordinal()-tm.Ordinal() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	f11 := TwoSeason.MustTerm(2011, Fall)
	s13 := TwoSeason.MustTerm(2013, Spring)
	r := Range(f11, s13)
	if len(r) != 4 {
		t.Fatalf("Range length = %d, want 4", len(r))
	}
	wantLabels := []string{"Fall '11", "Spring '12", "Fall '12", "Spring '13"}
	for i, tm := range r {
		if tm.String() != wantLabels[i] {
			t.Errorf("Range[%d] = %q, want %q", i, tm.String(), wantLabels[i])
		}
	}
	if got := Range(s13, f11); got != nil {
		t.Errorf("reversed Range = %v, want nil", got)
	}
	if got := Range(f11, f11); len(got) != 1 {
		t.Errorf("single-term Range length = %d, want 1", len(got))
	}
	if got := Range(Term{}, f11); got != nil {
		t.Error("zero-start Range should be nil")
	}
	d := ThreeSeason.MustTerm(2012, Fall)
	if got := Range(f11, d); got != nil {
		t.Error("cross-calendar Range should be nil")
	}
}

func TestTermCalendarAccessor(t *testing.T) {
	if got := TwoSeason.MustTerm(2012, Fall).Calendar(); got != TwoSeason {
		t.Error("Calendar accessor wrong")
	}
}

// Package term implements academic-semester arithmetic for CourseNavigator.
//
// The paper models time as a sequence of semesters with s[i+1] = s[i] + 1
// ("Fall '11", "Spring '12", "Fall '12", ...). A Term packs a calendar year
// and a season into a single ordinal so that ordering, distance and
// iteration are plain integer operations.
//
// The reproduction follows the paper's two-season academic calendar
// (Fall and Spring); Summer terms are supported as an extension and are
// disabled unless a Calendar including Summer is used.
package term

import (
	"fmt"
	"strconv"
	"strings"
)

// Season is the portion of the academic year a term occupies.
type Season uint8

// Seasons in within-year order. Spring precedes Fall within the same
// calendar year (Spring 2012 happens before Fall 2012).
const (
	Spring Season = iota
	Summer
	Fall
	numSeasons
)

// String returns the capitalized season name ("Spring", "Summer", "Fall").
func (s Season) String() string {
	switch s {
	case Spring:
		return "Spring"
	case Summer:
		return "Summer"
	case Fall:
		return "Fall"
	default:
		return fmt.Sprintf("Season(%d)", uint8(s))
	}
}

// ParseSeason parses a season name. It accepts any capitalization and the
// common short forms "fa", "sp", "su".
func ParseSeason(s string) (Season, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "spring", "spr", "sp", "s":
		return Spring, nil
	case "summer", "sum", "su":
		return Summer, nil
	case "fall", "autumn", "fa", "f":
		return Fall, nil
	default:
		return 0, fmt.Errorf("term: unknown season %q", s)
	}
}

// Calendar defines which seasons exist in an academic year and their order.
// The paper's evaluation uses the two-season calendar.
type Calendar struct {
	seasons []Season // within-year order
	index   [numSeasons]int8
}

// NewCalendar builds a calendar from the given seasons, which must be
// distinct and listed in within-year order.
func NewCalendar(seasons ...Season) (*Calendar, error) {
	if len(seasons) == 0 {
		return nil, fmt.Errorf("term: calendar needs at least one season")
	}
	c := &Calendar{seasons: append([]Season(nil), seasons...)}
	for i := range c.index {
		c.index[i] = -1
	}
	prev := Season(0)
	for i, s := range seasons {
		if s >= numSeasons {
			return nil, fmt.Errorf("term: invalid season %d", s)
		}
		if c.index[s] >= 0 {
			return nil, fmt.Errorf("term: duplicate season %v", s)
		}
		if i > 0 && s <= prev {
			return nil, fmt.Errorf("term: seasons out of within-year order: %v after %v", s, prev)
		}
		c.index[s] = int8(i)
		prev = s
	}
	return c, nil
}

// TwoSeason is the Fall/Spring calendar used throughout the paper.
var TwoSeason = mustCalendar(Spring, Fall)

// ThreeSeason additionally includes Summer terms.
var ThreeSeason = mustCalendar(Spring, Summer, Fall)

func mustCalendar(seasons ...Season) *Calendar {
	c, err := NewCalendar(seasons...)
	if err != nil {
		panic(err)
	}
	return c
}

// TermsPerYear reports how many terms the calendar has per calendar year.
func (c *Calendar) TermsPerYear() int { return len(c.seasons) }

// Contains reports whether the calendar includes season s.
func (c *Calendar) Contains(s Season) bool {
	return s < numSeasons && c.index[s] >= 0
}

// Seasons returns the calendar's seasons in within-year order.
func (c *Calendar) Seasons() []Season {
	return append([]Season(nil), c.seasons...)
}

// A Term is one academic semester: a (year, season) pair tied to a Calendar.
// Terms form a totally ordered sequence; Next/Prev move by one semester,
// matching the paper's s+1 transitions. The zero Term is invalid; build
// Terms with Calendar.Term or Parse.
type Term struct {
	cal *Calendar
	ord int // year*TermsPerYear + seasonIndex
}

// Term builds the term for the given calendar year and season.
func (c *Calendar) Term(year int, season Season) (Term, error) {
	if year < 1 {
		return Term{}, fmt.Errorf("term: invalid year %d", year)
	}
	if !c.Contains(season) {
		return Term{}, fmt.Errorf("term: season %v not in calendar", season)
	}
	return Term{cal: c, ord: year*len(c.seasons) + int(c.index[season])}, nil
}

// MustTerm is Term but panics on error; intended for tests and constants.
func (c *Calendar) MustTerm(year int, season Season) Term {
	t, err := c.Term(year, season)
	if err != nil {
		panic(err)
	}
	return t
}

// IsZero reports whether t is the invalid zero Term.
func (t Term) IsZero() bool { return t.cal == nil }

// Calendar returns the calendar the term belongs to.
func (t Term) Calendar() *Calendar { return t.cal }

// Year returns the calendar year of the term.
func (t Term) Year() int { return t.ord / len(t.cal.seasons) }

// Season returns the season of the term.
func (t Term) Season() Season { return t.cal.seasons[t.ord%len(t.cal.seasons)] }

// Ordinal returns the term's position in the calendar's global semester
// sequence. Ordinals of terms from the same calendar differ by exactly the
// number of semesters between them.
func (t Term) Ordinal() int { return t.ord }

// Next returns the following semester (the paper's s+1).
func (t Term) Next() Term { return Term{cal: t.cal, ord: t.ord + 1} }

// Prev returns the preceding semester.
func (t Term) Prev() Term { return Term{cal: t.cal, ord: t.ord - 1} }

// Add returns the term n semesters after t (n may be negative).
func (t Term) Add(n int) Term { return Term{cal: t.cal, ord: t.ord + n} }

// Before reports whether t occurs strictly before u.
func (t Term) Before(u Term) bool { return t.ord < u.ord }

// After reports whether t occurs strictly after u.
func (t Term) After(u Term) bool { return t.ord > u.ord }

// Equal reports whether t and u denote the same semester.
func (t Term) Equal(u Term) bool { return t.cal == u.cal && t.ord == u.ord }

// Compare returns -1, 0 or +1 ordering t against u.
func (t Term) Compare(u Term) int {
	switch {
	case t.ord < u.ord:
		return -1
	case t.ord > u.ord:
		return 1
	default:
		return 0
	}
}

// Sub returns the number of semesters from u to t (t − u).
func (t Term) Sub(u Term) int { return t.ord - u.ord }

// String renders the term in the paper's style, e.g. "Fall '11".
func (t Term) String() string {
	if t.IsZero() {
		return "Term(zero)"
	}
	return fmt.Sprintf("%s '%02d", t.Season(), t.Year()%100)
}

// Label renders the term with the full year, e.g. "Fall 2011".
func (t Term) Label() string {
	if t.IsZero() {
		return "Term(zero)"
	}
	return fmt.Sprintf("%s %d", t.Season(), t.Year())
}

// Parse parses a term label against the given calendar. Accepted forms:
// "Fall 2011", "Fall '11", "fall11", "FA2011", "2011 Fall". Two-digit years
// are interpreted as 20xx.
func Parse(c *Calendar, s string) (Term, error) {
	raw := strings.TrimSpace(s)
	if raw == "" {
		return Term{}, fmt.Errorf("term: empty term string")
	}
	fields := splitTermLabel(raw)
	if len(fields) != 2 {
		return Term{}, fmt.Errorf("term: cannot parse %q", s)
	}
	a, b := fields[0], fields[1]
	// Allow "2011 Fall" as well as "Fall 2011".
	if isNumeric(a) && !isNumeric(b) {
		a, b = b, a
	}
	season, err := ParseSeason(a)
	if err != nil {
		return Term{}, fmt.Errorf("term: cannot parse %q: %v", s, err)
	}
	year, err := parseYear(b)
	if err != nil {
		return Term{}, fmt.Errorf("term: cannot parse %q: %v", s, err)
	}
	t, err := c.Term(year, season)
	if err != nil {
		return Term{}, fmt.Errorf("term: %q: %v", s, err)
	}
	return t, nil
}

// splitTermLabel splits a term label into its season and year parts,
// tolerating separators ("Fall 2011", "Fall'11", "fall-2011") and the
// compact form "fall11".
func splitTermLabel(s string) []string {
	s = strings.NewReplacer("'", " ", "’", " ", "-", " ", "_", " ", ",", " ").Replace(s)
	fields := strings.Fields(s)
	if len(fields) == 1 {
		// Compact form: letters immediately followed by digits.
		w := fields[0]
		i := 0
		for i < len(w) && !isDigit(w[i]) {
			i++
		}
		if i > 0 && i < len(w) {
			return []string{w[:i], w[i:]}
		}
	}
	return fields
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return true
}

func parseYear(s string) (int, error) {
	y, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad year %q", s)
	}
	if y < 100 {
		y += 2000
	}
	if y < 1000 || y > 9999 {
		return 0, fmt.Errorf("year %d out of range", y)
	}
	return y, nil
}

// Range returns the terms from first to last inclusive. It returns nil if
// the terms belong to different calendars or last precedes first.
func Range(first, last Term) []Term {
	if first.IsZero() || last.IsZero() || first.cal != last.cal || last.ord < first.ord {
		return nil
	}
	out := make([]Term, 0, last.ord-first.ord+1)
	for t := first; !t.After(last); t = t.Next() {
		out = append(out, t)
	}
	return out
}

// Package tenant defines the multi-tenant vocabulary of the serving
// layer: tenant identifiers and their canonical form, and the manifest
// format that describes a fleet of catalogs for one server to host.
//
// A tenant is one institution's catalog served in isolation — its own
// snapshot generations, result-cache partition and concurrency quota —
// under the /api/v1/t/{tenant}/... route prefix. The package is
// deliberately small and mechanism-free: the registry that holds live
// tenant state lives in internal/server; here are only the pure pieces
// (ID rules, manifest parsing, source-to-loader plumbing) that the
// server, the CLI and the tests all share.
package tenant

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

// Default is the tenant ID the bare (tenant-less) /api/v1/... routes
// resolve to, so single-tenant deployments keep their pre-tenancy URLs.
const Default = "default"

// MaxIDLen bounds a canonical tenant ID's length.
const MaxIDLen = 64

// Canonical maps a user-supplied tenant ID to its canonical form:
// surrounding whitespace trimmed and ASCII letters case-folded to
// lower case — the same trim/case-fold contract catalog.Canonical
// applies to course IDs, so "/api/v1/t/ Brandeis /..." and
// "/api/v1/t/brandeis/..." name the same tenant.
func Canonical(id string) string {
	return strings.ToLower(strings.TrimSpace(id))
}

// ValidID reports whether a canonical ID is acceptable: 1–64 characters
// drawn from [a-z0-9._-], starting with a letter or digit. The charset
// keeps IDs unambiguous inside URL paths and file names.
func ValidID(id string) bool {
	if id == "" || len(id) > MaxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Spec describes one tenant's catalog source in a manifest. Exactly one
// of Catalog (catalog JSON) or Dump (raw registrar text, optionally
// with Schedule) may be set; with neither, the embedded evaluation
// dataset is served — handy for demos and tests.
type Spec struct {
	// ID is the tenant identifier (canonicalised by Parse).
	ID string `json:"id"`
	// Catalog is a catalog JSON file path.
	Catalog string `json:"catalog,omitempty"`
	// Dump is a raw registrar catalog dump path (alternative to Catalog).
	Dump string `json:"dump,omitempty"`
	// Schedule overlays registrar schedule records on Dump.
	Schedule string `json:"schedule,omitempty"`
	// Lenient quarantines malformed Dump records instead of failing.
	Lenient bool `json:"lenient,omitempty"`
	// First and Last bound the Dump schedule window (defaults
	// "Fall 2011" … "Fall 2015", matching the server flags).
	First string `json:"first,omitempty"`
	Last  string `json:"last,omitempty"`
	// MaxConcurrent caps this tenant's in-flight explorations; 0 inherits
	// the server's per-tenant default.
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// HistoryYears and Seed configure the synthetic offering history for
	// reliability ranking (defaults 4 and 1, matching the server flags).
	HistoryYears int   `json:"historyYears,omitempty"`
	Seed         int64 `json:"seed,omitempty"`
}

// Manifest is the fleet description a server loads at startup
// (-tenants manifest.json) or via POST /api/v1/admin/tenants.
type Manifest struct {
	Tenants []Spec `json:"tenants"`
}

// Parse reads and validates a manifest: strict JSON, every ID
// canonicalised and valid, no duplicates, at most one catalog source
// per entry.
func Parse(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("tenant manifest: %v", err)
	}
	if len(m.Tenants) == 0 {
		return Manifest{}, fmt.Errorf("tenant manifest: no tenants listed")
	}
	seen := make(map[string]bool, len(m.Tenants))
	for i := range m.Tenants {
		sp := &m.Tenants[i]
		sp.ID = Canonical(sp.ID)
		if !ValidID(sp.ID) {
			return Manifest{}, fmt.Errorf("tenant manifest: entry %d: invalid tenant id %q", i, sp.ID)
		}
		if seen[sp.ID] {
			return Manifest{}, fmt.Errorf("tenant manifest: duplicate tenant id %q", sp.ID)
		}
		seen[sp.ID] = true
		if sp.Catalog != "" && sp.Dump != "" {
			return Manifest{}, fmt.Errorf("tenant manifest: tenant %q: catalog and dump are mutually exclusive", sp.ID)
		}
		if sp.Schedule != "" && sp.Dump == "" {
			return Manifest{}, fmt.Errorf("tenant manifest: tenant %q: schedule requires dump", sp.ID)
		}
	}
	return m, nil
}

// Load parses the manifest at path and returns it with the directory
// relative source paths resolve against (the manifest's own directory,
// so a manifest can sit next to its catalogs).
func Load(path string) (Manifest, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, "", err
	}
	defer f.Close()
	m, err := Parse(f)
	if err != nil {
		return Manifest{}, "", fmt.Errorf("%s: %v", path, err)
	}
	return m, filepath.Dir(path), nil
}

// LoadFunc produces a freshly built Navigator (plus the lenient-import
// report when applicable). It is the tenant-package spelling of
// server.Loader: the two have identical underlying types, so a LoadFunc
// converts directly.
type LoadFunc func() (*coursenav.Navigator, *coursenav.ImportReport, error)

// Loader builds the catalog-loading function for this spec. Relative
// source paths resolve against baseDir. The returned function re-reads
// the source on every call, so hot reloads see exactly what a restart
// would.
func (sp Spec) Loader(baseDir string) LoadFunc {
	first, last := sp.First, sp.Last
	if first == "" {
		first = "Fall 2011"
	}
	if last == "" {
		last = "Fall 2015"
	}
	histYears, seed := sp.HistoryYears, sp.Seed
	if histYears == 0 {
		histYears = 4
	}
	if seed == 0 {
		seed = 1
	}
	resolve := func(p string) string {
		if p == "" || filepath.IsAbs(p) || baseDir == "" {
			return p
		}
		return filepath.Join(baseDir, p)
	}
	catalogPath, dumpPath, schedulePath := resolve(sp.Catalog), resolve(sp.Dump), resolve(sp.Schedule)
	return func() (*coursenav.Navigator, *coursenav.ImportReport, error) {
		var (
			nav *coursenav.Navigator
			rep *coursenav.ImportReport
			err error
		)
		switch {
		case dumpPath != "":
			nav, rep, err = loadDump(dumpPath, schedulePath, first, last, sp.Lenient)
		case catalogPath != "":
			nav, err = loadJSON(catalogPath)
		default:
			nav, _ = coursenav.Brandeis()
		}
		if err != nil {
			return nil, rep, err
		}
		if err := nav.UseSyntheticHistory(histYears, seed); err != nil {
			return nil, rep, fmt.Errorf("history: %v", err)
		}
		return nav, rep, nil
	}
}

func loadJSON(path string) (*coursenav.Navigator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return coursenav.NewFromJSON(f)
}

func loadDump(dumpPath, schedulePath, firstTerm, lastTerm string, lenient bool) (*coursenav.Navigator, *coursenav.ImportReport, error) {
	df, err := os.Open(dumpPath)
	if err != nil {
		return nil, nil, err
	}
	defer df.Close()
	var sched io.Reader
	if schedulePath != "" {
		sf, err := os.Open(schedulePath)
		if err != nil {
			return nil, nil, err
		}
		defer sf.Close()
		sched = sf
	}
	if lenient {
		return coursenav.NewFromRegistrarDumpLenient(df, sched, firstTerm, lastTerm)
	}
	nav, err := coursenav.NewFromRegistrarDump(df, sched, firstTerm, lastTerm)
	return nav, nil, err
}

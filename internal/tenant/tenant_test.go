package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"brandeis", "brandeis"},
		{" Brandeis ", "brandeis"},
		{"ACME-U", "acme-u"},
		{"\tdefault\n", "default"},
	}
	for _, tc := range cases {
		if got := Canonical(tc.in); got != tc.want {
			t.Errorf("Canonical(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestValidID(t *testing.T) {
	valid := []string{"a", "brandeis", "acme-u", "u.2024", "x_y", strings.Repeat("a", MaxIDLen)}
	for _, id := range valid {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "-lead", ".lead", "_lead", "has space", "Upper", "slash/y",
		strings.Repeat("a", MaxIDLen+1), "tenant\x00"}
	for _, id := range invalid {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
}

func TestParseValidatesManifest(t *testing.T) {
	good := `{"tenants":[{"id":" Brandeis "},{"id":"acme","maxConcurrent":4}]}`
	m, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m.Tenants) != 2 || m.Tenants[0].ID != "brandeis" || m.Tenants[1].MaxConcurrent != 4 {
		t.Errorf("manifest = %+v", m)
	}

	bad := []struct{ name, doc string }{
		{"empty", `{"tenants":[]}`},
		{"no-id", `{"tenants":[{"catalog":"x.json"}]}`},
		{"bad-id", `{"tenants":[{"id":"a b"}]}`},
		{"dup-id", `{"tenants":[{"id":"a"},{"id":" A "}]}`},
		{"two-sources", `{"tenants":[{"id":"a","catalog":"x.json","dump":"y.txt"}]}`},
		{"schedule-without-dump", `{"tenants":[{"id":"a","schedule":"s.txt"}]}`},
		{"unknown-field", `{"tenants":[{"id":"a","nope":1}]}`},
		{"not-json", `nope`},
	}
	for _, tc := range bad {
		if _, err := Parse(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: Parse accepted %s", tc.name, tc.doc)
		}
	}
}

func TestLoaderEmbeddedAndJSON(t *testing.T) {
	// No source: the embedded evaluation dataset.
	nav, rep, err := Spec{ID: "demo"}.Loader("")()
	if err != nil || rep != nil {
		t.Fatalf("embedded loader: nav err %v, report %v", err, rep)
	}
	if nav.NumCourses() == 0 {
		t.Fatal("embedded loader produced an empty catalog")
	}

	// A catalog JSON source, resolved relative to baseDir.
	dir := t.TempDir()
	doc := `[{"id":"XX 1","title":"One","offered":["Fall 2013"],"workload":4}]`
	if err := os.WriteFile(filepath.Join(dir, "cat.json"), []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	nav, _, err = Spec{ID: "filebacked", Catalog: "cat.json"}.Loader(dir)()
	if err != nil {
		t.Fatalf("json loader: %v", err)
	}
	if nav.NumCourses() != 1 {
		t.Errorf("json loader: %d courses, want 1", nav.NumCourses())
	}

	// A missing source errors rather than silently serving nothing.
	if _, _, err := (Spec{ID: "gone", Catalog: "missing.json"}.Loader(dir))(); err == nil {
		t.Error("missing catalog file loaded without error")
	}
}

func TestLoadResolvesBaseDir(t *testing.T) {
	dir := t.TempDir()
	manifest := `{"tenants":[{"id":"a","catalog":"cat.json"}]}`
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, []byte(manifest), 0o600); err != nil {
		t.Fatal(err)
	}
	m, base, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if base != dir || len(m.Tenants) != 1 {
		t.Errorf("Load = %+v base %q, want base %q", m, base, dir)
	}
}

package transcript

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brandeis"
	"repro/internal/catalog"
	"repro/internal/degree"
	"repro/internal/explore"
	"repro/internal/expr"
	"repro/internal/status"
	"repro/internal/term"
)

var (
	f11 = term.TwoSeason.MustTerm(2011, term.Fall)
	s12 = f11.Next()
	f12 = s12.Next()
)

func fig3Catalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.NewBuilder(term.TwoSeason).
		Add(catalog.Course{ID: "11A", Offered: []term.Term{f11, f12}}).
		Add(catalog.Course{ID: "29A", Offered: []term.Term{f11, f12}}).
		Add(catalog.Course{ID: "21A", Prereq: expr.MustParse("11A"), Offered: []term.Term{s12}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestReplayValid(t *testing.T) {
	cat := fig3Catalog(t)
	tr := Transcript{Student: "S1", Entries: []Entry{
		{Term: f11, Courses: []string{"29A"}},
		{Term: s12}, // semester off (nothing electable)
		{Term: f12, Courses: []string{"11A"}},
	}}
	x, err := Replay(cat, tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(cat.MustSetOf("11A", "29A")) {
		t.Errorf("final X = %v", cat.IDs(x))
	}
}

func TestReplayViolations(t *testing.T) {
	cat := fig3Catalog(t)
	cases := []struct {
		name string
		tr   Transcript
	}{
		{"empty", Transcript{Student: "S"}},
		{"unknown course", Transcript{Entries: []Entry{{Term: f11, Courses: []string{"99Z"}}}}},
		{"not offered", Transcript{Entries: []Entry{{Term: s12, Courses: []string{"11A"}}}}},
		{"prereq unmet", Transcript{Entries: []Entry{{Term: f11, Courses: []string{"29A"}}, {Term: s12, Courses: []string{"21A"}}}}},
		{"gap", Transcript{Entries: []Entry{{Term: f11, Courses: []string{"11A"}}, {Term: f12, Courses: []string{"29A"}}}}},
		{"over limit", Transcript{Entries: []Entry{{Term: f11, Courses: []string{"11A", "29A"}}}}},
		{"duplicate in term", Transcript{Entries: []Entry{{Term: f11, Courses: []string{"11A", "11A"}}}}},
		{"retake", Transcript{Entries: []Entry{{Term: f11, Courses: []string{"11A"}}, {Term: s12, Courses: []string{"21A"}}, {Term: f12, Courses: []string{"11A"}}}}},
		{"zero term", Transcript{Entries: []Entry{{}}}},
	}
	for _, c := range cases {
		m := 3
		if c.name == "over limit" {
			m = 1
		}
		if _, err := Replay(cat, c.tr, m); err == nil {
			t.Errorf("%s: Replay accepted invalid transcript", c.name)
		}
	}
}

func TestFollowsGraph(t *testing.T) {
	cat := fig3Catalog(t)
	start := status.New(cat, f11, bitset.New(3))
	res, err := explore.Deadline(cat, start, f12.Next(), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := Transcript{Entries: []Entry{
		{Term: f11, Courses: []string{"29A"}},
		{Term: s12},
		{Term: f12, Courses: []string{"11A"}},
	}}
	if !FollowsGraph(cat, res.Graph, good) {
		t.Error("feasible transcript not found in deadline graph")
	}
	// Prefixes of generated paths follow too.
	prefix := Transcript{Entries: []Entry{{Term: f11, Courses: []string{"11A", "29A"}}}}
	if !FollowsGraph(cat, res.Graph, prefix) {
		t.Error("path prefix not found")
	}
	for _, bad := range []Transcript{
		{Entries: []Entry{{Term: f11, Courses: []string{"21A"}}}}, // ineligible selection
		{Entries: []Entry{{Term: s12, Courses: []string{"21A"}}}}, // wrong start term
		{}, // empty
		{Entries: []Entry{{Term: f11, Courses: []string{"nope"}}}},                                       // unknown course
		{Entries: []Entry{{Term: f11, Courses: []string{"11A"}}, {Term: s12, Courses: []string{"11A"}}}}, // no matching edge
	} {
		if FollowsGraph(cat, res.Graph, bad) {
			t.Errorf("invalid transcript %v follows graph", bad.Entries)
		}
	}
}

func TestGenerateReachesGoalAndReplays(t *testing.T) {
	cat := fig3Catalog(t)
	goal, _ := degree.NewCourseSet(cat, "11A", "29A", "21A")
	trs, err := Generate(cat, goal, f11, f12.Next(), 3, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 20 {
		t.Fatalf("generated %d transcripts", len(trs))
	}
	for _, tr := range trs {
		x, err := Replay(cat, tr, 3)
		if err != nil {
			t.Errorf("%s does not replay: %v", tr.Student, err)
			continue
		}
		if !goal.Satisfied(x) {
			t.Errorf("%s does not reach the goal (X=%v)", tr.Student, cat.IDs(x))
		}
	}
	// Determinism by seed.
	trs2, _ := Generate(cat, goal, f11, f12.Next(), 3, 20, 42)
	a, b := new(bytes.Buffer), new(bytes.Buffer)
	if err := Write(a, trs); err != nil {
		t.Fatal(err)
	}
	if err := Write(b, trs2); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed generated different transcripts")
	}
}

func TestGenerateUnsatisfiable(t *testing.T) {
	cat := fig3Catalog(t)
	goal, _ := degree.NewCourseSet(cat, "21A")
	// Starting after 21A's only offering: impossible.
	if _, err := Generate(cat, goal, f12, f12.Next(), 3, 1, 1); err == nil {
		t.Error("unsatisfiable generation succeeded")
	}
	if _, err := Generate(cat, goal, f11, f12, 3, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestSection52Containment runs the paper's §5.2 experiment end to end at
// reduced scale: generated "actual" transcripts must all be contained in
// the goal-driven algorithm's generated paths — checked literally against
// the materialised graph.
func TestSection52Containment(t *testing.T) {
	cat := brandeis.Catalog()
	major, err := brandeis.Major(cat)
	if err != nil {
		t.Fatal(err)
	}
	start := brandeis.StartForSemesters(4) // 4-semester window keeps the graph small
	end := brandeis.EndTerm()
	trs, err := Generate(cat, major, start, end, brandeis.MaxPerTerm, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.Goal(cat, status.New(cat, start, bitset.New(cat.Len())), end, major,
		explore.PaperPruners(cat, major, brandeis.MaxPerTerm),
		explore.Options{MaxPerTerm: brandeis.MaxPerTerm})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs {
		if !FollowsGraph(cat, res.Graph, tr) {
			t.Errorf("%s not contained in goal-driven learning graph", tr.Student)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	cat := fig3Catalog(t)
	goal, _ := degree.NewCourseSet(cat, "11A", "29A")
	trs, err := Generate(cat, goal, f11, f12.Next(), 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, trs); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, term.TwoSeason)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trs) {
		t.Fatalf("round-trip count %d != %d", len(back), len(trs))
	}
	for i := range back {
		if back[i].Student != trs[i].Student || len(back[i].Entries) != len(trs[i].Entries) {
			t.Errorf("transcript %d mismatch", i)
			continue
		}
		for j := range back[i].Entries {
			if !back[i].Entries[j].Term.Equal(trs[i].Entries[j].Term) ||
				strings.Join(back[i].Entries[j].Courses, ",") != strings.Join(trs[i].Entries[j].Courses, ",") {
				t.Errorf("transcript %d entry %d mismatch", i, j)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"Fall 2011: COSI 11A\n",     // entry before student
		"student: S1\nnot a line\n", // missing colon
		"student: S1\nWinter 2011: X\n",
	} {
		if _, err := Parse(strings.NewReader(bad), term.TwoSeason); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Comments and blank lines are fine.
	good := "# comment\nstudent: S1\nFall 2011: 11A\n\nstudent: S2\nFall 2011:\n"
	trs, err := Parse(strings.NewReader(good), term.TwoSeason)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 || len(trs[1].Entries[0].Courses) != 0 {
		t.Errorf("parsed = %+v", trs)
	}
}

func TestStartAndCourses(t *testing.T) {
	tr := Transcript{Entries: []Entry{
		{Term: f11, Courses: []string{"11A"}},
		{Term: s12, Courses: []string{"21A"}},
	}}
	if !tr.Start().Equal(f11) {
		t.Error("Start wrong")
	}
	if got := strings.Join(tr.Courses(), ","); got != "11A,21A" {
		t.Errorf("Courses = %q", got)
	}
	if !(Transcript{}).Start().IsZero() {
		t.Error("empty Start not zero")
	}
}

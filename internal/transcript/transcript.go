// Package transcript models anonymised student transcripts and the §5.2
// "comparison with existing learning paths" experiment.
//
// The paper obtained 83 anonymous transcripts of Brandeis CS majors
// (Fall '12 – Fall '15) and verified that every actual path appears among
// the goal-driven algorithm's generated paths. The real transcripts are
// not public, so Generate synthesises feasible goal-reaching walks with
// the same role (DESIGN.md §4): the experiment's check — actual ⊆
// generated — is replayed by Replay (rule-level validation, equivalent to
// membership in the exhaustively generated path set because the generator
// emits every feasible path) and, for small instances, by FollowsGraph
// (literal edge-walk containment in a materialised learning graph).
package transcript

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/degree"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/status"
	"repro/internal/term"
)

// Entry is one semester of a transcript: the courses elected that term.
type Entry struct {
	Term    term.Term
	Courses []string
}

// Transcript is an anonymised per-student course history, ordered by term
// with no gaps (a semester off is an Entry with no courses).
type Transcript struct {
	Student string
	Entries []Entry
}

// Start returns the first semester, or a zero Term for empty transcripts.
func (tr Transcript) Start() term.Term {
	if len(tr.Entries) == 0 {
		return term.Term{}
	}
	return tr.Entries[0].Term
}

// Courses returns all course IDs in the transcript, in election order.
func (tr Transcript) Courses() []string {
	var out []string
	for _, e := range tr.Entries {
		out = append(out, e.Courses...)
	}
	return out
}

// Replay validates the transcript against the catalog's rules, exactly the
// constraints Algorithm 1 enforces per transition: entries in consecutive
// terms, each elected course offered that term, not already completed, its
// prerequisites satisfied by prior completions, and at most maxPerTerm
// elections per term. It returns the final completed set.
func Replay(cat *catalog.Catalog, tr Transcript, maxPerTerm int) (bitset.Set, error) {
	x := bitset.New(cat.Len())
	if len(tr.Entries) == 0 {
		return x, fmt.Errorf("transcript %s: empty", tr.Student)
	}
	prev := term.Term{}
	for i, e := range tr.Entries {
		if e.Term.IsZero() || e.Term.Calendar() != cat.Calendar() {
			return x, fmt.Errorf("transcript %s: entry %d has invalid term", tr.Student, i)
		}
		if i > 0 && e.Term.Sub(prev) != 1 {
			return x, fmt.Errorf("transcript %s: gap between %v and %v (semesters off must be explicit empty entries)", tr.Student, prev, e.Term)
		}
		prev = e.Term
		if maxPerTerm > 0 && len(e.Courses) > maxPerTerm {
			return x, fmt.Errorf("transcript %s: %d courses in %v exceeds limit %d", tr.Student, len(e.Courses), e.Term, maxPerTerm)
		}
		options := cat.Options(x, e.Term)
		taken := bitset.New(cat.Len())
		for _, id := range e.Courses {
			ci, ok := cat.Index(id)
			if !ok {
				return x, fmt.Errorf("transcript %s: unknown course %q", tr.Student, id)
			}
			if taken.Contains(ci) {
				return x, fmt.Errorf("transcript %s: %q elected twice in %v", tr.Student, id, e.Term)
			}
			if !options.Contains(ci) {
				return x, fmt.Errorf("transcript %s: %q not electable in %v (offered and prerequisites satisfied?)", tr.Student, id, e.Term)
			}
			taken.Add(ci)
		}
		x.UnionInPlace(taken)
	}
	return x, nil
}

// FollowsGraph reports whether the transcript is literally one of the
// paths of a materialised learning graph: a root-to-node walk whose edge
// selections match the transcript's entries semester by semester. The
// walk may end at any node (generated paths may extend past the goal).
func FollowsGraph(cat *catalog.Catalog, g *graph.Graph, tr Transcript) bool {
	cur := g.Root()
	if len(tr.Entries) == 0 || !g.Node(cur).Status.Term.Equal(tr.Entries[0].Term) {
		return false
	}
	for _, e := range tr.Entries {
		want, err := cat.SetOf(e.Courses...)
		if err != nil {
			return false
		}
		next := graph.NodeID(-1)
		for _, eid := range g.Node(cur).Out {
			edge := g.Edge(eid)
			if edge.Selection.Equal(want) {
				next = edge.To
				break
			}
		}
		if next < 0 {
			return false
		}
		cur = next
	}
	return true
}

// Generate synthesises n transcripts of students who reach the goal by the
// end semester: random feasible walks (uniform among electable selections,
// biased toward goal-relevant courses) with backtracking. Walks stop at
// the first goal-satisfying status, like the goal-driven algorithm's end
// nodes. It fails if a goal-reaching walk cannot be found (unsatisfiable
// configuration).
//
// Seeding contract: all randomness flows from the explicit seed — equal
// (catalog, goal, window, maxPerTerm, n, seed) inputs produce byte-
// identical transcripts on every run and platform. Generate never touches
// the package-level math/rand state. Callers composing several generation
// steps into one reproducible pipeline (e.g. cohort synthesis) should use
// GenerateRand and thread a single *rand.Rand through every step.
func Generate(cat *catalog.Catalog, goal degree.Goal, start, end term.Term, maxPerTerm, n int, seed int64) ([]Transcript, error) {
	return GenerateRand(cat, goal, start, end, maxPerTerm, n, rand.New(rand.NewSource(seed)))
}

// GenerateRand is Generate drawing from a caller-owned random source: the
// generator consumes rng in a fixed order, so an equal-state rng yields
// identical transcripts, and sequential calls sharing one rng form a
// single deterministic stream (the second call continues where the first
// stopped). rng must not be shared concurrently.
func GenerateRand(cat *catalog.Catalog, goal degree.Goal, start, end term.Term, maxPerTerm, n int, rng *rand.Rand) ([]Transcript, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transcript: n must be positive")
	}
	if rng == nil {
		return nil, fmt.Errorf("transcript: nil rng")
	}
	pruners := explore.PaperPruners(cat, goal, maxPerTerm)
	out := make([]Transcript, 0, n)
	for i := 0; i < n; i++ {
		var entries []Entry
		x := bitset.New(cat.Len())
		if !walk(cat, goal, status.New(cat, start, x), end, maxPerTerm, pruners, rng, &entries) {
			return nil, fmt.Errorf("transcript: no goal-reaching walk from %v to %v", start, end)
		}
		out = append(out, Transcript{Student: fmt.Sprintf("S%03d", i+1), Entries: entries})
	}
	return out, nil
}

// walk extends entries with a goal-reaching suffix from st; it returns
// false when none exists below this node (triggering backtracking above).
// The goal-driven pruning strategies (admissible, so they never cut a
// goal-reaching walk) keep the backtracking tractable in tight windows.
func walk(cat *catalog.Catalog, goal degree.Goal, st status.Status, end term.Term, m int, pruners []explore.Pruner, rng *rand.Rand, entries *[]Entry) bool {
	if goal.Satisfied(st.Completed) {
		return true
	}
	if !st.Term.Before(end) {
		return false
	}
	minTake := 0
	for _, p := range pruners {
		prune, mt := p.Check(st, end)
		if prune {
			return false
		}
		if mt > minTake {
			minTake = mt
		}
	}
	// Candidate selections: subsets of the option set sized within
	// [max(minTake,1), m], shuffled, goal-relevant-heavy first. Enumerating
	// all subsets would be exponential; sampling a bounded number of random
	// subsets suffices because backtracking covers failures.
	options := st.Options.Members()
	var candidates [][]int
	if len(options) > 0 {
		maxSize := minInt(m, len(options))
		loSize := maxInt(1, minTake)
		if loSize > maxSize {
			return false // cannot take enough courses this semester
		}
		relevant := goal.Relevant()
		seen := map[string]bool{}
		for try := 0; try < 48; try++ {
			size := loSize + rng.Intn(maxSize-loSize+1)
			perm := rng.Perm(len(options))
			// Bias: move goal-relevant courses to the front, then cut to
			// size, so most samples make progress.
			sort.SliceStable(perm, func(a, b int) bool {
				ra := relevant.Contains(options[perm[a]])
				rb := relevant.Contains(options[perm[b]])
				return ra && !rb
			})
			sel := append([]int(nil), perm[:size]...)
			ids := make([]int, len(sel))
			for j, pi := range sel {
				ids[j] = options[pi]
			}
			sort.Ints(ids)
			key := fmt.Sprint(ids)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, ids)
			}
		}
	} else {
		candidates = append(candidates, nil) // semester off
	}
	for _, ids := range candidates {
		w := bitset.New(cat.Len())
		courses := make([]string, len(ids))
		for j, ci := range ids {
			w.Add(ci)
			courses[j] = cat.ID(ci)
		}
		*entries = append(*entries, Entry{Term: st.Term, Courses: courses})
		if walk(cat, goal, st.Advance(cat, w), end, m, pruners, rng, entries) {
			return true
		}
		*entries = (*entries)[:len(*entries)-1]
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Write serialises transcripts in the dump format Parse reads:
//
//	student: S001
//	Fall 2012: COSI 11A, COSI 29A
//	Spring 2013:
//	...
func Write(w io.Writer, trs []Transcript) error {
	for i, tr := range trs {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "student: %s\n", tr.Student); err != nil {
			return err
		}
		for _, e := range tr.Entries {
			if _, err := fmt.Fprintf(w, "%s: %s\n", e.Term.Label(), strings.Join(e.Courses, ", ")); err != nil {
				return err
			}
		}
	}
	return nil
}

// Parse reads the Write format. Blank lines separate students; '#' lines
// are comments.
func Parse(r io.Reader, cal *term.Calendar) ([]Transcript, error) {
	var out []Transcript
	var cur *Transcript
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			flush()
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		key, val, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("transcript: line %d: want \"key: value\", got %q", lineNo, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if strings.EqualFold(key, "student") {
			flush()
			cur = &Transcript{Student: val}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("transcript: line %d: entry before student:", lineNo)
		}
		tm, err := term.Parse(cal, key)
		if err != nil {
			return nil, fmt.Errorf("transcript: line %d: %v", lineNo, err)
		}
		var courses []string
		if val != "" {
			for _, c := range strings.Split(val, ",") {
				courses = append(courses, strings.TrimSpace(c))
			}
		}
		cur.Entries = append(cur.Entries, Entry{Term: tm, Courses: courses})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("transcript: %v", err)
	}
	flush()
	if len(out) == 0 {
		return nil, fmt.Errorf("transcript: empty input")
	}
	return out, nil
}

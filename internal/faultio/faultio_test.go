package faultio

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReaderDeliversPrefixThenFails(t *testing.T) {
	r := &Reader{R: strings.NewReader("hello, world"), FailAfter: 5}
	b, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(b) != "hello" {
		t.Errorf("prefix = %q, want %q", b, "hello")
	}
}

func TestReaderCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	r := &Reader{R: strings.NewReader("payload"), FailAfter: 3, Err: custom}
	if _, err := io.ReadAll(r); !errors.Is(err, custom) {
		t.Errorf("err = %v, want custom error", err)
	}
}

// TestReaderShortPayload: the payload running out before the injection
// point still injects the fault — never a clean EOF — so tests always
// exercise the error path they mean to.
func TestReaderShortPayload(t *testing.T) {
	r := &Reader{R: strings.NewReader("ab"), FailAfter: 100}
	b, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(b) != "ab" {
		t.Errorf("payload = %q", b)
	}
}

func TestReaderFailAfterZero(t *testing.T) {
	r := &Reader{R: strings.NewReader("never seen"), FailAfter: 0}
	if n, err := r.Read(make([]byte, 8)); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("Read = %d, %v; want 0, ErrInjected", n, err)
	}
}

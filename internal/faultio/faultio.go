// Package faultio provides failure-injecting io wrappers for tests: a
// reader that delivers a prefix of its payload and then fails with an
// injected error. The ingestion and hot-reload tests use it to prove that
// a data source dying mid-read surfaces as a hard error (never as a
// silently truncated import) and that a reload aborted mid-parse leaves
// the serving snapshot untouched.
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the default error a Reader fails with.
var ErrInjected = errors.New("faultio: injected failure")

// Reader yields at most FailAfter bytes of R, then returns Err.
type Reader struct {
	// R is the underlying payload.
	R io.Reader
	// FailAfter is the number of bytes to deliver before failing.
	FailAfter int
	// Err is the error to return once FailAfter bytes were read; nil
	// means ErrInjected.
	Err error

	read int
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.read >= r.FailAfter {
		return 0, r.err()
	}
	if remaining := r.FailAfter - r.read; len(p) > remaining {
		p = p[:remaining]
	}
	n, err := r.R.Read(p)
	r.read += n
	if err == io.EOF {
		// The payload ran out before the injection point: the fault is
		// still injected, not EOF, so callers exercise the error path.
		return n, r.err()
	}
	return n, err
}

func (r *Reader) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

package datagen

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/explore"
	"repro/internal/status"
)

func TestGenerateDefault(t *testing.T) {
	cat, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 38 {
		t.Errorf("Len = %d", cat.Len())
	}
	if u := cat.Unreachable(); len(u) != 0 {
		t.Errorf("unreachable: %v", u)
	}
	if n := cat.NeverOffered(); len(n) != 0 {
		t.Errorf("never offered: %v", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ca, cb := a.Course(i), b.Course(i)
		if ca.ID != cb.ID || ca.Prereq.String() != cb.Prereq.String() ||
			len(ca.Offered) != len(cb.Offered) || ca.Workload != cb.Workload {
			t.Fatalf("course %d differs across equal-seed generations", i)
		}
	}
	p := Default()
	p.Seed = 99
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Course(i).Prereq.String() != c.Course(i).Prereq.String() ||
			len(a.Course(i).Offered) != len(c.Course(i).Offered) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds generated identical catalogs")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Params{
		{},
		{Courses: 1, Layers: 2, Terms: 4, IntroFraction: 0.2, OfferProb: 0.5},
		{Courses: 10, Layers: 1, Terms: 4, IntroFraction: 0.2, OfferProb: 0.5},
		{Courses: 10, Layers: 2, Terms: 1, IntroFraction: 0.2, OfferProb: 0.5},
		{Courses: 10, Layers: 2, Terms: 4, IntroFraction: 0, OfferProb: 0.5},
		{Courses: 10, Layers: 2, Terms: 4, IntroFraction: 0.2, OfferProb: 1.5},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestGeneratedCatalogExplores(t *testing.T) {
	p := Default()
	p.Courses = 16
	p.Terms = 6
	cat, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	start := status.New(cat, cat.FirstTerm(), bitset.New(cat.Len()))
	res, err := explore.DeadlineCount(cat, start, cat.FirstTerm().Add(3), explore.Options{MaxPerTerm: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths == 0 {
		t.Error("generated catalog produced no learning paths")
	}
}

func TestGenerateRequirement(t *testing.T) {
	cat, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	r, err := GenerateRequirement(cat, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSlots() != 8 {
		t.Errorf("TotalSlots = %d", r.TotalSlots())
	}
	all := bitset.New(cat.Len())
	for i := 0; i < cat.Len(); i++ {
		all.Add(i)
	}
	if !r.Satisfied(all) {
		t.Error("full catalog does not satisfy generated requirement")
	}
	if _, err := GenerateRequirement(cat, 30, 30); err == nil {
		t.Error("oversized requirement accepted")
	}
}

// Package datagen generates parameterised synthetic course catalogs for
// benchmarks that scale beyond the fixed 38-course evaluation dataset
// (internal/brandeis): wider catalogs, deeper prerequisite chains, denser
// or sparser schedules. Generation is layered — an intro layer without
// prerequisites, then layers whose prerequisites draw on earlier layers —
// which matches how real curricula are structured and guarantees every
// course is reachable.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/degree"
	"repro/internal/expr"
	"repro/internal/term"
)

// Params configures catalog generation. The zero value is invalid; start
// from Default.
type Params struct {
	// Courses is the catalog size.
	Courses int
	// IntroFraction is the fraction of courses with no prerequisites.
	IntroFraction float64
	// Layers is the prerequisite-lattice depth (including the intro layer).
	Layers int
	// OrProb is the probability a prerequisite condition is a disjunction
	// of two courses instead of a single course; conjunctions of two are
	// used with the same probability.
	OrProb float64
	// Terms is the schedule-window length in semesters.
	Terms int
	// OfferProb is the per-(course, term) offering probability; seasonal
	// patterns emerge by thresholding per-course season affinity.
	OfferProb float64
	// Seed drives all randomness; equal Params generate equal catalogs.
	Seed int64
}

// Default returns parameters roughly matching the Brandeis evaluation
// dataset's shape.
func Default() Params {
	return Params{
		Courses:       38,
		IntroFraction: 0.1,
		Layers:        4,
		OrProb:        0.2,
		Terms:         9,
		OfferProb:     0.55,
		Seed:          1,
	}
}

// Generate builds the catalog described by p. The schedule window starts
// at Fall 2011.
//
// Seeding contract: all randomness flows from p.Seed — equal Params
// generate byte-identical catalogs on every run and platform, and the
// package-level math/rand state is never touched. Pipelines composing
// catalog generation with further seeded steps (cohort synthesis,
// history generation) should call GenerateRand with one shared
// *rand.Rand so a single seed reproduces the whole pipeline.
func Generate(p Params) (*catalog.Catalog, error) {
	return GenerateRand(p, rand.New(rand.NewSource(p.Seed)))
}

// GenerateRand is Generate drawing from a caller-owned random source
// (p.Seed is ignored): the generator consumes rng in a fixed order, so an
// equal-state rng yields an identical catalog and sequential calls
// sharing one rng form a single deterministic stream. rng must not be
// shared concurrently.
func GenerateRand(p Params, rng *rand.Rand) (*catalog.Catalog, error) {
	switch {
	case p.Courses < 2:
		return nil, fmt.Errorf("datagen: need at least 2 courses, got %d", p.Courses)
	case p.Layers < 2:
		return nil, fmt.Errorf("datagen: need at least 2 layers, got %d", p.Layers)
	case p.Terms < 2:
		return nil, fmt.Errorf("datagen: need at least 2 terms, got %d", p.Terms)
	case p.IntroFraction <= 0 || p.IntroFraction > 1:
		return nil, fmt.Errorf("datagen: IntroFraction %g out of (0,1]", p.IntroFraction)
	case p.OfferProb <= 0 || p.OfferProb > 1:
		return nil, fmt.Errorf("datagen: OfferProb %g out of (0,1]", p.OfferProb)
	case rng == nil:
		return nil, fmt.Errorf("datagen: nil rng")
	}
	intro := int(float64(p.Courses)*p.IntroFraction + 0.5)
	if intro < 1 {
		intro = 1
	}
	// Assign layers: intro courses to layer 0, the rest spread over
	// layers 1..Layers-1.
	layerOf := make([]int, p.Courses)
	for i := range layerOf {
		if i < intro {
			layerOf[i] = 0
		} else {
			layerOf[i] = 1 + (i-intro)*(p.Layers-1)/(p.Courses-intro)
		}
	}
	first := term.TwoSeason.MustTerm(2011, term.Fall)
	last := first.Add(p.Terms - 1)
	b := catalog.NewBuilder(term.TwoSeason)
	for i := 0; i < p.Courses; i++ {
		id := fmt.Sprintf("GEN %d%c", i/4+1, 'A'+i%4)
		var q expr.Expr = expr.True{}
		if layerOf[i] > 0 {
			// Pick prerequisites from strictly earlier layers.
			pick := func() expr.Expr {
				for {
					j := rng.Intn(i)
					if layerOf[j] < layerOf[i] {
						return expr.Course{ID: fmt.Sprintf("GEN %d%c", j/4+1, 'A'+j%4)}
					}
				}
			}
			switch r := rng.Float64(); {
			case r < p.OrProb:
				q = expr.NewOr(pick(), pick())
			case r < 2*p.OrProb:
				q = expr.NewAnd(pick(), pick())
			default:
				q = pick()
			}
		}
		// Seasonal affinity: a third fall-leaning, a third spring-leaning,
		// a third even.
		affinity := rng.Intn(3)
		var offered []term.Term
		for t := first; !t.After(last); t = t.Next() {
			pr := p.OfferProb
			switch {
			case affinity == 0 && t.Season() != term.Fall:
				pr *= 0.3
			case affinity == 1 && t.Season() != term.Spring:
				pr *= 0.3
			}
			if rng.Float64() < pr {
				offered = append(offered, t)
			}
		}
		if len(offered) == 0 {
			// Guarantee at least one offering so the course is reachable.
			offered = append(offered, first.Add(rng.Intn(p.Terms)))
		}
		b.Add(catalog.Course{
			ID:       id,
			Title:    fmt.Sprintf("Generated Course %d (layer %d)", i, layerOf[i]),
			Prereq:   q,
			Offered:  offered,
			Workload: 6 + rng.Float64()*8,
		})
	}
	return b.Build()
}

// GenerateRequirement builds a degree requirement over a generated
// catalog: coreCount courses sampled from the lower layers (by index
// order, deterministic given the catalog) plus electiveCount drawn from
// the remainder.
func GenerateRequirement(cat *catalog.Catalog, coreCount, electiveCount int) (*degree.Requirement, error) {
	n := cat.Len()
	if coreCount+electiveCount > n {
		return nil, fmt.Errorf("datagen: requirement %d+%d exceeds catalog of %d", coreCount, electiveCount, n)
	}
	var core, elective []string
	for i := 0; i < n; i++ {
		if i < coreCount {
			core = append(core, cat.ID(i))
		} else {
			elective = append(elective, cat.ID(i))
		}
	}
	return degree.NewRequirement(cat,
		degree.GroupSpec{Name: "core", Count: coreCount, Courses: core},
		degree.GroupSpec{Name: "elective", Count: electiveCount, Courses: elective},
	)
}

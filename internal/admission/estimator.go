// The cost estimator: every admission decision needs a per-request cost
// before the request has run. Two sources, in preference order:
//
//  1. Observed cost. The server records each computed exploration's wall
//     time under its canonical request key (the same digest the result
//     cache uses, minus the generation), folded into a per-key EWMA. A
//     key seen before is estimated at its own history — by far the best
//     predictor for the paper's tweak-one-knob-and-re-explore workload.
//
//  2. A depth/breadth seed for keys never observed. The
//     course-prerequisite-network results (Zuev & Stavrinides: breadth,
//     depth and flux of prerequisite networks) show exploration cost is
//     predictable from how deep the horizon reaches and how broad each
//     term's choice set is; the seed models that as base·(1+branch)^terms
//     — exponential in the semester horizon with the per-term branching
//     as the base — divided by a flat discount for count-only runs,
//     which the interned-status DAG substrate answers at a cost that
//     scales with distinct statuses rather than paths.
//
// The estimate orders requests for shedding; it does not need to be
// accurate in absolute terms, only monotone in true cost — cheap vs
// costly is the decision boundary, and observation repairs any seed
// misranking after one computation.
package admission

import (
	"math"
	"sync"
	"time"
)

// Hint carries the depth/breadth features that seed a cost estimate for
// a request whose key was never observed.
type Hint struct {
	// Terms is the horizon length in semesters (start → end inclusive).
	Terms int
	// Branch is the per-term branching proxy (the request's maxPerTerm).
	Branch float64
	// CountOnly marks tally-only runs, answered on the DAG substrate at a
	// fraction of enumeration cost.
	CountOnly bool
}

const (
	// seedBaseMs scales the seed formula; with branch 3 and a five-term
	// horizon the seed lands at ~512ms — past the default costly
	// threshold, as a five-term exhaustive enumeration should.
	seedBaseMs = 0.5
	// countOnlyDiscount divides count-only seeds (DAG-substrate runs).
	countOnlyDiscount = 16
	// maxSeedTerms caps the exponent: past ten semesters every request is
	// equally "very expensive" and float blowup serves nobody.
	maxSeedTerms = 10
	// obsCap bounds the observation map; the working set of distinct
	// canonical requests between reloads is far smaller.
	obsCap = 4096
	// ewmaAlpha weights a new observation against a key's history.
	ewmaAlpha = 0.3
)

// SeedCost is the depth/breadth heuristic for an unobserved request.
func SeedCost(h Hint) float64 {
	terms := h.Terms
	if terms <= 0 {
		terms = 4 // unparseable window: assume a middling horizon
	}
	if terms > maxSeedTerms {
		terms = maxSeedTerms
	}
	branch := h.Branch
	if branch <= 0 {
		branch = 3
	}
	ms := seedBaseMs * math.Pow(1+branch, float64(terms))
	if h.CountOnly {
		ms /= countOnlyDiscount
	}
	return ms
}

// Estimator maps canonical request keys to observed cost EWMAs. All
// methods are safe for concurrent use; the zero value is not usable,
// construct with NewEstimator.
type Estimator struct {
	mu  sync.Mutex
	obs map[[32]byte]float64
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{obs: map[[32]byte]float64{}}
}

// Estimate returns the estimated cost (ms) for key: the key's observed
// EWMA when one exists (observed true), the Hint-seeded heuristic
// otherwise. A nil estimator seeds only.
func (e *Estimator) Estimate(key [32]byte, h Hint) (ms float64, observed bool) {
	if e == nil {
		return SeedCost(h), false
	}
	e.mu.Lock()
	v, ok := e.obs[key]
	e.mu.Unlock()
	if ok {
		return v, true
	}
	return SeedCost(h), false
}

// Observe folds one computed run's wall time into key's EWMA. A nil
// estimator ignores the observation.
func (e *Estimator) Observe(key [32]byte, d time.Duration) {
	if e == nil {
		return
	}
	ms := float64(d) / float64(time.Millisecond)
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.obs[key]; ok {
		e.obs[key] = v + ewmaAlpha*(ms-v)
		return
	}
	if len(e.obs) >= obsCap {
		// Drop an arbitrary entry: the map is a working set, not a ledger,
		// and any evicted key re-seeds then re-learns in one observation.
		for k := range e.obs {
			delete(e.obs, k)
			break
		}
	}
	e.obs[key] = ms
}

// Len reports the number of keys with observations.
func (e *Estimator) Len() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.obs)
}

// Package admission implements cost-aware admission control for the
// exploration service: a deadline-aware bounded queue over a fixed pool
// of execution slots, plus the brownout health state the server's
// degradation machinery keys off.
//
// The pre-existing admission story was a flat semaphore: saturated
// meant an instant 429 for everyone, so a burst of expensive
// deep-horizon queries made the service fail hard exactly when users
// needed partial answers most. Here a request arrives with a cost
// estimate (see Estimator): when a slot is free it runs immediately;
// when the pool is saturated, cheap requests wait in a bounded queue
// for a slot (bounded by the queue depth, the queue timeout and the
// request's own context), while expensive ones are shed at once — under
// pressure the fleet's capacity goes to the many cheap interactive
// queries rather than a few exhaustive ones. RetryAfter computes an
// honest retry hint from live queue state (waiters, slots and the
// observed mean run time) instead of a hardcoded constant.
//
// Health: the controller derives one of three states. StateOK — slots
// free, nothing queued. StatePressured — saturated or queueing, but
// nothing shed recently. StateDegraded — the queue is at least half
// full, or a shed happened within the degrade-hold window (hysteresis:
// one shed keeps the state degraded briefly so the server's brownout
// reactions — stale serving, budget clamps — engage for the whole
// burst, not just the one unlucky request).
package admission

import (
	"context"
	"math"
	"sync/atomic"
	"time"
)

// Outcome reports how Acquire disposed of one request.
type Outcome int

const (
	// Admitted: a slot was free; the request runs immediately.
	Admitted Outcome = iota
	// AdmittedQueued: the request waited in the queue and then got a slot.
	AdmittedQueued
	// ShedCostly: saturated and the cost estimate crossed the costly
	// threshold — expensive uncached work is shed first.
	ShedCostly
	// ShedQueueFull: saturated with the queue at depth (or queueing
	// disabled).
	ShedQueueFull
	// ShedTimeout: queued, but the queue timeout or the request's own
	// context expired before a slot freed.
	ShedTimeout
)

// String returns the stable label recorded in usage events.
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case AdmittedQueued:
		return "queued"
	case ShedCostly:
		return "shed_costly"
	case ShedQueueFull:
		return "shed_queue_full"
	case ShedTimeout:
		return "queue_timeout"
	}
	return "unknown"
}

// Shed reports whether the outcome denied the request a slot.
func (o Outcome) Shed() bool { return o >= ShedCostly }

// State is the controller's brownout health state.
type State int

const (
	StateOK State = iota
	StatePressured
	StateDegraded
)

// String returns the state's wire label ("ok", "pressured", "degraded").
func (s State) String() string {
	switch s {
	case StatePressured:
		return "pressured"
	case StateDegraded:
		return "degraded"
	}
	return "ok"
}

// Defaults applied by New for zero Config fields.
const (
	DefaultSlots        = 64
	DefaultQueueTimeout = 2 * time.Second
	DefaultCostlyMs     = 250
	DefaultDegradeHold  = 3 * time.Second
)

// Config sizes a Controller.
type Config struct {
	// Slots is the number of concurrently executing requests (the old
	// semaphore width). Defaults to DefaultSlots.
	Slots int
	// QueueDepth bounds the number of waiters when saturated; 0 disables
	// queueing entirely — every saturated request sheds instantly, the
	// pre-queue behaviour.
	QueueDepth int
	// QueueTimeout caps one request's queue wait (the request's own
	// context may be shorter). Defaults to DefaultQueueTimeout.
	QueueTimeout time.Duration
	// CostlyMs is the estimated-cost threshold (milliseconds) above which
	// a request is shed rather than queued when the pool is saturated.
	// Defaults to DefaultCostlyMs.
	CostlyMs float64
	// DegradeHold is how long after a shed the state stays degraded
	// (hysteresis). Defaults to DefaultDegradeHold.
	DegradeHold time.Duration
}

// Controller is the admission queue. All methods are safe for
// concurrent use.
type Controller struct {
	cfg   Config
	slots chan struct{}

	waiters  atomic.Int64
	avgBits  atomic.Uint64 // EWMA of observed run duration, float64 ms bits
	lastShed atomic.Int64  // unix nanos of the most recent shed; 0 = never

	queued, shedCostly, shedQueueFull, shedTimeout atomic.Int64
}

// New returns a Controller for cfg, applying defaults to zero fields
// (QueueDepth 0 is meaningful — queueing off — and kept).
func New(cfg Config) *Controller {
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.CostlyMs <= 0 {
		cfg.CostlyMs = DefaultCostlyMs
	}
	if cfg.DegradeHold <= 0 {
		cfg.DegradeHold = DefaultDegradeHold
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	return &Controller{cfg: cfg, slots: make(chan struct{}, cfg.Slots)}
}

// Acquire admits one request with the given estimated cost (ms).
// On admission the returned release must be called when the run ends;
// it returns the slot and feeds the run's duration into the mean the
// retry hints use. On a shed outcome release is nil.
func (c *Controller) Acquire(ctx context.Context, costMs float64) (release func(), outcome Outcome) {
	select {
	case c.slots <- struct{}{}:
		return c.releaser(), Admitted
	default:
	}
	if c.cfg.QueueDepth == 0 {
		c.shed(&c.shedQueueFull)
		return nil, ShedQueueFull
	}
	if costMs >= c.cfg.CostlyMs {
		c.shed(&c.shedCostly)
		return nil, ShedCostly
	}
	if c.waiters.Load() >= int64(c.cfg.QueueDepth) {
		c.shed(&c.shedQueueFull)
		return nil, ShedQueueFull
	}
	c.waiters.Add(1)
	defer c.waiters.Add(-1)
	timer := time.NewTimer(c.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case c.slots <- struct{}{}:
		c.queued.Add(1)
		return c.releaser(), AdmittedQueued
	case <-timer.C:
		c.shed(&c.shedTimeout)
		return nil, ShedTimeout
	case <-ctx.Done():
		// The client gave up while queued; same disposition as a timeout.
		c.shed(&c.shedTimeout)
		return nil, ShedTimeout
	}
}

// TryAcquire takes a slot without queueing or shedding side effects
// (no counters, no degrade latch) — the server's background
// revalidation and legacy test hooks use it.
func (c *Controller) TryAcquire() (release func(), ok bool) {
	select {
	case c.slots <- struct{}{}:
		return c.releaser(), true
	default:
		return nil, false
	}
}

func (c *Controller) releaser() func() {
	began := time.Now()
	var once atomic.Bool
	return func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		c.observeRun(time.Since(began))
		<-c.slots
	}
}

func (c *Controller) shed(counter *atomic.Int64) {
	counter.Add(1)
	c.lastShed.Store(time.Now().UnixNano())
}

// observeRun folds one completed run's duration into the EWMA the
// retry hints use.
func (c *Controller) observeRun(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for {
		old := c.avgBits.Load()
		next := ms
		if old != 0 {
			prev := math.Float64frombits(old)
			next = prev + 0.2*(ms-prev)
		}
		if c.avgBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// AvgRunMs returns the observed mean run duration (0 until a run
// completes).
func (c *Controller) AvgRunMs() float64 {
	return math.Float64frombits(c.avgBits.Load())
}

// RetryAfter estimates, in whole seconds (min 1, capped at 60), how
// long a shed request should wait before retrying: the current queue
// must drain ahead of it, at the observed mean run time spread across
// the slot pool. This is the honest Retry-After the server sends.
func (c *Controller) RetryAfter() int {
	avg := c.AvgRunMs()
	if avg <= 0 {
		avg = 100 // nothing observed yet; assume a tenth of a second
	}
	waitMs := (float64(c.waiters.Load()) + 1) * avg / float64(cap(c.slots))
	secs := int(math.Ceil(waitMs / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// State derives the brownout health state; see the package comment.
func (c *Controller) State() State {
	if last := c.lastShed.Load(); last > 0 && time.Since(time.Unix(0, last)) < c.cfg.DegradeHold {
		return StateDegraded
	}
	w := c.waiters.Load()
	if c.cfg.QueueDepth > 0 && w >= int64((c.cfg.QueueDepth+1)/2) {
		return StateDegraded
	}
	if len(c.slots) >= cap(c.slots) || w > 0 {
		return StatePressured
	}
	return StateOK
}

// Snapshot is a point-in-time view of the controller for the health and
// stats surfaces.
type Snapshot struct {
	State         string  `json:"state"`
	InFlight      int     `json:"inFlight"`
	Slots         int     `json:"slots"`
	Waiters       int     `json:"waiters"`
	QueueDepth    int     `json:"queueDepth"`
	AvgRunMs      float64 `json:"avgRunMs"`
	Queued        int64   `json:"queued"`
	ShedCostly    int64   `json:"shedCostly"`
	ShedQueueFull int64   `json:"shedQueueFull"`
	ShedTimeout   int64   `json:"shedTimeout"`
}

// Snapshot returns the current counters and state.
func (c *Controller) Snapshot() Snapshot {
	return Snapshot{
		State:         c.State().String(),
		InFlight:      len(c.slots),
		Slots:         cap(c.slots),
		Waiters:       int(c.waiters.Load()),
		QueueDepth:    c.cfg.QueueDepth,
		AvgRunMs:      c.AvgRunMs(),
		Queued:        c.queued.Load(),
		ShedCostly:    c.shedCostly.Load(),
		ShedQueueFull: c.shedQueueFull.Load(),
		ShedTimeout:   c.shedTimeout.Load(),
	}
}

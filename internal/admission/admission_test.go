package admission

import (
	"context"
	"sync"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Slots:        1,
		QueueDepth:   4,
		QueueTimeout: 200 * time.Millisecond,
		CostlyMs:     100,
		DegradeHold:  50 * time.Millisecond,
	}
}

func TestAcquireImmediate(t *testing.T) {
	c := New(testConfig())
	rel, out := c.Acquire(context.Background(), 1)
	if out != Admitted || rel == nil {
		t.Fatalf("outcome = %v, want Admitted", out)
	}
	rel()
	rel() // double release must be a no-op, not a slot underflow
	if rel2, out2 := c.Acquire(context.Background(), 1); out2 != Admitted {
		t.Fatalf("after release: %v, want Admitted", out2)
	} else {
		rel2()
	}
}

// TestQueueAdmitsCheapOnRelease: a cheap request queues when saturated
// and is admitted as soon as the slot frees.
func TestQueueAdmitsCheapOnRelease(t *testing.T) {
	c := New(testConfig())
	rel, _ := c.Acquire(context.Background(), 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		rel()
	}()
	began := time.Now()
	rel2, out := c.Acquire(context.Background(), 1) // cheap: queues
	if out != AdmittedQueued {
		t.Fatalf("outcome = %v, want AdmittedQueued", out)
	}
	if waited := time.Since(began); waited < 10*time.Millisecond {
		t.Errorf("admitted after %v, want an actual queue wait", waited)
	}
	rel2()
	if got := c.Snapshot().Queued; got != 1 {
		t.Errorf("queued counter = %d, want 1", got)
	}
}

// TestShedCostlyWhenSaturated: an expensive request is shed instantly
// while cheap ones still queue.
func TestShedCostlyWhenSaturated(t *testing.T) {
	c := New(testConfig())
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	began := time.Now()
	r, out := c.Acquire(context.Background(), 500) // >= CostlyMs
	if out != ShedCostly || r != nil {
		t.Fatalf("outcome = %v, want ShedCostly", out)
	}
	if time.Since(began) > 50*time.Millisecond {
		t.Error("costly shed was not instant")
	}
	if got := c.Snapshot().ShedCostly; got != 1 {
		t.Errorf("shedCostly = %d, want 1", got)
	}
	if !ShedCostly.Shed() || Admitted.Shed() || AdmittedQueued.Shed() {
		t.Error("Outcome.Shed misclassifies")
	}
}

// TestShedQueueFull: waiters at depth shed further cheap arrivals.
func TestShedQueueFull(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	cfg.QueueTimeout = time.Second
	c := New(cfg)
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, _ := c.Acquire(ctx, 1); r != nil {
				r()
			}
		}()
	}
	// Wait for both waiters to be registered.
	for i := 0; i < 200 && c.Snapshot().Waiters < 2; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, out := c.Acquire(context.Background(), 1); out != ShedQueueFull {
		t.Errorf("outcome = %v, want ShedQueueFull", out)
	}
	cancel()
	wg.Wait()
}

// TestQueueTimeout: a queued request whose wait exceeds QueueTimeout is
// shed with ShedTimeout; same for its own context expiring.
func TestQueueTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.QueueTimeout = 30 * time.Millisecond
	c := New(cfg)
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	if _, out := c.Acquire(context.Background(), 1); out != ShedTimeout {
		t.Errorf("queue-timeout outcome = %v, want ShedTimeout", out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	cfg.QueueTimeout = time.Second
	c2 := New(cfg)
	rel2, _ := c2.Acquire(context.Background(), 1)
	defer rel2()
	if _, out := c2.Acquire(ctx, 1); out != ShedTimeout {
		t.Errorf("ctx-expiry outcome = %v, want ShedTimeout", out)
	}
}

// TestQueueDisabled: QueueDepth 0 restores the instant-shed semaphore.
func TestQueueDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 0
	c := New(cfg)
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	began := time.Now()
	if _, out := c.Acquire(context.Background(), 1); out != ShedQueueFull {
		t.Errorf("outcome = %v, want ShedQueueFull", out)
	}
	if time.Since(began) > 50*time.Millisecond {
		t.Error("queue-disabled shed was not instant")
	}
}

// TestStateTransitions: ok → pressured under saturation, degraded after
// a shed, back to ok once the hold elapses and pressure clears.
func TestStateTransitions(t *testing.T) {
	c := New(testConfig())
	if got := c.State(); got != StateOK {
		t.Fatalf("idle state = %v, want ok", got)
	}
	rel, _ := c.Acquire(context.Background(), 1)
	if got := c.State(); got != StatePressured {
		t.Errorf("saturated state = %v, want pressured", got)
	}
	c.Acquire(context.Background(), 500) // costly shed latches degraded
	if got := c.State(); got != StateDegraded {
		t.Errorf("post-shed state = %v, want degraded", got)
	}
	rel()
	time.Sleep(60 * time.Millisecond) // past DegradeHold
	if got := c.State(); got != StateOK {
		t.Errorf("recovered state = %v, want ok", got)
	}
	if StateOK.String() != "ok" || StatePressured.String() != "pressured" || StateDegraded.String() != "degraded" {
		t.Error("state labels drifted")
	}
}

// TestRetryAfterReflectsQueueState: the hint grows with observed run
// time and queue depth, and stays within [1, 60].
func TestRetryAfterReflectsQueueState(t *testing.T) {
	c := New(testConfig())
	if got := c.RetryAfter(); got != 1 {
		t.Errorf("idle RetryAfter = %d, want 1", got)
	}
	// Observe long runs to drive the mean up: ~3s each.
	rel, _ := c.Acquire(context.Background(), 1)
	c.observeRun(3 * time.Second)
	c.observeRun(3 * time.Second)
	c.observeRun(3 * time.Second)
	defer rel()
	if got := c.RetryAfter(); got < 2 {
		t.Errorf("RetryAfter with 3s mean runs = %d, want >= 2", got)
	}
	c.observeRun(10 * time.Minute)
	if got := c.RetryAfter(); got > 60 {
		t.Errorf("RetryAfter = %d, want capped at 60", got)
	}
}

func TestSnapshotCounters(t *testing.T) {
	c := New(testConfig())
	rel, _ := c.Acquire(context.Background(), 1)
	c.Acquire(context.Background(), 500) // shed costly
	snap := c.Snapshot()
	if snap.InFlight != 1 || snap.Slots != 1 || snap.ShedCostly != 1 || snap.State != "degraded" {
		t.Errorf("snapshot = %+v", snap)
	}
	rel()
	if got := c.Snapshot().InFlight; got != 0 {
		t.Errorf("post-release inFlight = %d", got)
	}
}

// TestAcquireConcurrent: many goroutines through a small pool — every
// admitted request releases, nothing deadlocks, counters balance
// (run under -race).
func TestAcquireConcurrent(t *testing.T) {
	cfg := testConfig()
	cfg.Slots = 4
	cfg.QueueDepth = 8
	cfg.QueueTimeout = time.Second
	c := New(cfg)
	var wg sync.WaitGroup
	var admitted, shed atomic64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cost := float64(1)
			if i%4 == 0 {
				cost = 500
			}
			rel, out := c.Acquire(context.Background(), cost)
			if out.Shed() {
				shed.add(1)
				return
			}
			admitted.add(1)
			time.Sleep(time.Millisecond)
			rel()
		}(i)
	}
	wg.Wait()
	if c.Snapshot().InFlight != 0 {
		t.Errorf("slots leaked: %+v", c.Snapshot())
	}
	if admitted.load()+shed.load() != 64 {
		t.Errorf("admitted %d + shed %d != 64", admitted.load(), shed.load())
	}
}

// Estimator tests.

func TestSeedCostMonotone(t *testing.T) {
	base := SeedCost(Hint{Terms: 3, Branch: 2})
	deeper := SeedCost(Hint{Terms: 6, Branch: 2})
	broader := SeedCost(Hint{Terms: 3, Branch: 4})
	if deeper <= base {
		t.Errorf("deeper horizon not dearer: %v <= %v", deeper, base)
	}
	if broader <= base {
		t.Errorf("broader terms not dearer: %v <= %v", broader, base)
	}
	counted := SeedCost(Hint{Terms: 6, Branch: 2, CountOnly: true})
	if counted >= deeper {
		t.Errorf("countOnly not discounted: %v >= %v", counted, deeper)
	}
	capped := SeedCost(Hint{Terms: 1000, Branch: 2})
	if capped != SeedCost(Hint{Terms: maxSeedTerms, Branch: 2}) {
		t.Error("horizon cap not applied")
	}
}

func TestEstimatorObservationOverridesSeed(t *testing.T) {
	e := NewEstimator()
	key := [32]byte{1}
	hint := Hint{Terms: 6, Branch: 3}
	seed, observed := e.Estimate(key, hint)
	if observed {
		t.Fatal("fresh key reported observed")
	}
	e.Observe(key, 5*time.Millisecond)
	got, observed := e.Estimate(key, hint)
	if !observed {
		t.Fatal("observed key reported unobserved")
	}
	if got == seed || got > 6 {
		t.Errorf("observed estimate = %vms, want ~5ms (seed was %v)", got, seed)
	}
	// EWMA moves toward new observations without jumping to them.
	e.Observe(key, 105*time.Millisecond)
	moved, _ := e.Estimate(key, hint)
	if moved <= got || moved >= 105 {
		t.Errorf("EWMA after 105ms observation = %v, want between %v and 105", moved, got)
	}
}

func TestEstimatorNilSafe(t *testing.T) {
	var e *Estimator
	if ms, observed := e.Estimate([32]byte{}, Hint{Terms: 2, Branch: 1}); observed || ms <= 0 {
		t.Errorf("nil estimator: %v, %v", ms, observed)
	}
	e.Observe([32]byte{}, time.Second) // must not panic
	if e.Len() != 0 {
		t.Error("nil Len != 0")
	}
}

func TestEstimatorCap(t *testing.T) {
	e := NewEstimator()
	var key [32]byte
	for i := 0; i < obsCap+10; i++ {
		key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
		e.Observe(key, time.Millisecond)
	}
	if got := e.Len(); got > obsCap {
		t.Errorf("observation map grew past the cap: %d > %d", got, obsCap)
	}
}

// atomic64 is a tiny test helper (avoids importing sync/atomic with a
// name clash against the package under test's fields).
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

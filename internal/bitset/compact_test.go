package bitset

import (
	"math/rand"
	"testing"
)

func TestCopyFrom(t *testing.T) {
	s := FromMembers(10, 1, 2)
	s.CopyFrom(FromMembers(200, 3, 150))
	if !s.Equal(FromMembers(200, 3, 150)) {
		t.Errorf("CopyFrom with growth: got %v", s)
	}
	// Copying a narrower set must zero the destination's excess words.
	s.CopyFrom(FromMembers(5, 4))
	if !s.Equal(FromMembers(5, 4)) || s.Contains(150) {
		t.Errorf("CopyFrom narrower: got %v", s)
	}
	s.CopyFrom(Set{})
	if !s.Empty() {
		t.Errorf("CopyFrom empty: got %v", s)
	}
}

func TestIntersectInPlaceAndLens(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n1, n2 := 1+rng.Intn(300), 1+rng.Intn(300)
		a, b := New(n1), New(n2)
		for i := 0; i < n1; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
		}
		for i := 0; i < n2; i++ {
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		if got, want := a.IntersectLen(b), a.Intersect(b).Len(); got != want {
			t.Fatalf("trial %d: IntersectLen = %d, want %d", trial, got, want)
		}
		if got, want := a.DiffLen(b), a.Diff(b).Len(); got != want {
			t.Fatalf("trial %d: DiffLen = %d, want %d", trial, got, want)
		}
		c := a.Clone()
		c.IntersectInPlace(b)
		if !c.Equal(a.Intersect(b)) {
			t.Fatalf("trial %d: IntersectInPlace: got %v, want %v", trial, c, a.Intersect(b))
		}
	}
}

func TestCompactKeyEquality(t *testing.T) {
	// Keys agree exactly when the sets agree, independent of capacity.
	a := FromMembers(10, 1, 7)
	b := FromMembers(500, 1, 7) // same members, wider backing array
	if a.CompactKey() != b.CompactKey() {
		t.Error("equal sets with different capacities produced different keys")
	}
	if a.CompactKey() == FromMembers(10, 1, 8).CompactKey() {
		t.Error("different sets share a key")
	}
	if New(0).CompactKey() != New(999).CompactKey() {
		t.Error("empty sets of different capacities differ")
	}
}

// TestCompactKeySpill crosses the inline-words boundary (4 words = 256
// courses): wide sets spill to the string key, and an inline key can never
// collide with a spilled one.
func TestCompactKeySpill(t *testing.T) {
	wide := FromMembers(1000, 1, 999)
	if wide.CompactKey() == FromMembers(1000, 1).CompactKey() {
		t.Error("distinct wide sets share a key")
	}
	// A wide backing array whose high bits are zero stays inline and equals
	// its narrow twin.
	narrow := FromMembers(10, 1)
	wideZero := FromMembers(1000, 1)
	if narrow.CompactKey() != wideZero.CompactKey() {
		t.Error("trailing zero words changed the key")
	}
	// Exhaustive-ish collision check across the boundary.
	seen := map[CompactKey]string{}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(400)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				s.Add(i)
			}
		}
		k := s.CompactKey()
		if prev, ok := seen[k]; ok && prev != s.Key() {
			t.Fatalf("collision: %q and %q share key %+v", prev, s.Key(), k)
		}
		seen[k] = s.Key()
	}
}

func TestCompactKeyHashDeterministic(t *testing.T) {
	s := FromMembers(300, 2, 77, 256)
	if s.CompactKey().Hash() != s.Clone().CompactKey().Hash() {
		t.Error("hash differs for equal keys")
	}
	if s.CompactKey().Hash() == FromMembers(300, 2, 77).CompactKey().Hash() {
		// Not impossible, but with these fixed inputs a collision means the
		// hash is ignoring words.
		t.Error("hash collision on near-identical sets")
	}
}

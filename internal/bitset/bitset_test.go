package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Errorf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("after Add(%d), Contains false", i)
		}
	}
	if got := s.Len(); got != 8 {
		t.Errorf("Len = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Remove(64) did not remove")
	}
	s.Remove(64) // idempotent
	s.Remove(-1) // no-op
	s.Remove(10000)
	if got := s.Len(); got != 7 {
		t.Errorf("Len after removes = %d, want 7", got)
	}
}

func TestAddGrowsAndNegativePanics(t *testing.T) {
	var s Set
	s.Add(500)
	if !s.Contains(500) {
		t.Error("grow-on-Add failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	s.Add(-1)
}

func TestContainsOutOfRange(t *testing.T) {
	s := FromMembers(10, 3)
	if s.Contains(-1) || s.Contains(100) {
		t.Error("out-of-range Contains returned true")
	}
}

func TestFromMembersAndMembers(t *testing.T) {
	s := FromMembers(100, 5, 1, 99, 64)
	want := []int{1, 5, 64, 99}
	if got := s.Members(); !reflect.DeepEqual(got, want) {
		t.Errorf("Members = %v, want %v", got, want)
	}
}

func TestEmptyAndClear(t *testing.T) {
	var zero Set
	if !zero.Empty() {
		t.Error("zero set not empty")
	}
	s := FromMembers(64, 0, 63)
	if s.Empty() {
		t.Error("non-empty reported empty")
	}
	s.Clear()
	if !s.Empty() || s.Len() != 0 {
		t.Error("Clear did not empty set")
	}
}

func TestSetAlgebraSmall(t *testing.T) {
	a := FromMembers(10, 1, 2, 3)
	b := FromMembers(10, 3, 4)
	if got := a.Union(b).Members(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Members(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b).Members(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Diff = %v", got)
	}
	if a.SubsetOf(b) {
		t.Error("a ⊆ b reported true")
	}
	if !FromMembers(10, 3).SubsetOf(a) {
		t.Error("{3} ⊆ a reported false")
	}
	if !a.Intersects(b) {
		t.Error("a ∩ b ≠ ∅ reported false")
	}
	if a.Intersects(FromMembers(10, 7, 8)) {
		t.Error("disjoint Intersects reported true")
	}
}

func TestAlgebraMixedCapacities(t *testing.T) {
	small := FromMembers(4, 1)
	big := FromMembers(300, 1, 299)
	if got := small.Union(big).Members(); !reflect.DeepEqual(got, []int{1, 299}) {
		t.Errorf("Union mixed = %v", got)
	}
	if got := big.Diff(small).Members(); !reflect.DeepEqual(got, []int{299}) {
		t.Errorf("Diff mixed = %v", got)
	}
	if got := big.Intersect(small).Members(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Intersect mixed = %v", got)
	}
	if !small.SubsetOf(big) {
		t.Error("small ⊆ big false")
	}
	if big.SubsetOf(small) {
		t.Error("big ⊆ small true")
	}
	if !small.Equal(FromMembers(1000, 1)) {
		t.Error("Equal should ignore capacity")
	}
	if !New(0).Equal(New(500)) {
		t.Error("empty sets of different capacity not Equal")
	}
}

func TestInPlaceOps(t *testing.T) {
	s := FromMembers(10, 1, 2)
	s.UnionInPlace(FromMembers(200, 150))
	if !s.Contains(150) || !s.Contains(1) {
		t.Error("UnionInPlace with growth failed")
	}
	s.DiffInPlace(FromMembers(10, 2))
	if s.Contains(2) || !s.Contains(1) {
		t.Error("DiffInPlace failed")
	}
	// DiffInPlace with a larger operand must not panic.
	u := FromMembers(5, 1)
	u.DiffInPlace(FromMembers(1000, 1, 999))
	if !u.Empty() {
		t.Error("DiffInPlace larger operand failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromMembers(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Error("Clone shares storage")
	}
	z := (Set{}).Clone()
	if !z.Empty() {
		t.Error("Clone of zero set not empty")
	}
}

func TestMinMax(t *testing.T) {
	var empty Set
	if empty.Min() != -1 || empty.Max() != -1 {
		t.Error("empty Min/Max should be -1")
	}
	s := FromMembers(200, 7, 64, 199)
	if s.Min() != 7 {
		t.Errorf("Min = %d", s.Min())
	}
	if s.Max() != 199 {
		t.Errorf("Max = %d", s.Max())
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromMembers(130, 129, 0, 64, 63)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{0, 63, 64, 129}) {
		t.Errorf("ForEach order = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := FromMembers(10, 2, 5).String(); got != "{2, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestKey(t *testing.T) {
	a := FromMembers(64, 1, 2)
	b := FromMembers(640, 1, 2) // same members, larger capacity
	if a.Key() != b.Key() {
		t.Error("Key differs across capacities")
	}
	c := FromMembers(64, 1, 3)
	if a.Key() == c.Key() {
		t.Error("distinct sets share Key")
	}
	if (Set{}).Key() != "" {
		t.Error("empty Key not empty string")
	}
	if New(500).Key() != "" {
		t.Error("empty wide set Key not empty string")
	}
}

// randSet builds a set from a bitmask pair for property tests (128 bits).
func randSet(lo, hi uint64) Set {
	return Set{words: []uint64{lo, hi}}
}

func TestQuickAlgebraLaws(t *testing.T) {
	type pair struct{ ALo, AHi, BLo, BHi uint64 }
	check := func(name string, f interface{}) {
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	_ = pair{}
	check("union commutes", func(al, ah, bl, bh uint64) bool {
		a, b := randSet(al, ah), randSet(bl, bh)
		return a.Union(b).Equal(b.Union(a))
	})
	check("intersect commutes", func(al, ah, bl, bh uint64) bool {
		a, b := randSet(al, ah), randSet(bl, bh)
		return a.Intersect(b).Equal(b.Intersect(a))
	})
	check("de morgan diff", func(al, ah, bl, bh, cl, ch uint64) bool {
		a, b, c := randSet(al, ah), randSet(bl, bh), randSet(cl, ch)
		// a - (b ∪ c) == (a - b) - c
		return a.Diff(b.Union(c)).Equal(a.Diff(b).Diff(c))
	})
	check("diff then disjoint", func(al, ah, bl, bh uint64) bool {
		a, b := randSet(al, ah), randSet(bl, bh)
		return !a.Diff(b).Intersects(b)
	})
	check("subset iff diff empty", func(al, ah, bl, bh uint64) bool {
		a, b := randSet(al, ah), randSet(bl, bh)
		return a.SubsetOf(b) == a.Diff(b).Empty()
	})
	check("len union inclusion-exclusion", func(al, ah, bl, bh uint64) bool {
		a, b := randSet(al, ah), randSet(bl, bh)
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	})
	check("members round-trip", func(al, ah uint64) bool {
		a := randSet(al, ah)
		back := FromMembers(128, a.Members()...)
		return back.Equal(a)
	})
	check("key equality matches Equal", func(al, ah, bl, bh uint64) bool {
		a, b := randSet(al, ah), randSet(bl, bh)
		return (a.Key() == b.Key()) == a.Equal(b)
	})
}

func TestQuickInPlaceMatchesPure(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a := randSet(rng.Uint64(), rng.Uint64())
		b := randSet(rng.Uint64(), rng.Uint64())
		u := a.Clone()
		u.UnionInPlace(b)
		if !u.Equal(a.Union(b)) {
			t.Fatalf("UnionInPlace mismatch at %d", i)
		}
		d := a.Clone()
		d.DiffInPlace(b)
		if !d.Equal(a.Diff(b)) {
			t.Fatalf("DiffInPlace mismatch at %d", i)
		}
	}
}

func BenchmarkUnionInPlace(b *testing.B) {
	x := New(256)
	y := New(256)
	for i := 0; i < 256; i += 3 {
		y.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.UnionInPlace(y)
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	x := New(256)
	y := New(256)
	for i := 0; i < 256; i += 2 {
		y.Add(i)
		if i%4 == 0 {
			x.Add(i)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.SubsetOf(y) {
			b.Fatal("subset expected")
		}
	}
}

package bitset

import "testing"

func TestArenaMakeIsolated(t *testing.T) {
	var a Arena
	s1 := a.Make(10)
	s2 := a.Make(10)
	s1.Add(3)
	s1.Add(7)
	s2.Add(5)
	if s1.Len() != 2 || !s1.Contains(3) || !s1.Contains(7) || s1.Contains(5) {
		t.Fatalf("s1 corrupted: %v", s1)
	}
	if s2.Len() != 1 || !s2.Contains(5) {
		t.Fatalf("s2 corrupted: %v", s2)
	}
}

// Growing an arena set beyond its capacity must reallocate it away from the
// chunk rather than clobber the neighbouring region.
func TestArenaGrowReallocates(t *testing.T) {
	var a Arena
	s1 := a.Make(64) // exactly one word
	s2 := a.Make(64) // the very next word in the chunk
	s2.Add(0)
	s1.Add(100) // forces s1 to grow past its one-word region
	if !s1.Contains(100) || s1.Len() != 1 {
		t.Fatalf("s1 after grow: %v", s1)
	}
	if s2.Len() != 1 || !s2.Contains(0) {
		t.Fatalf("s2 clobbered by neighbour growth: %v", s2)
	}
}

func TestArenaChunkRollover(t *testing.T) {
	var a Arena
	sets := make([]Set, 0, 3*chunkWords)
	for i := 0; i < 3*chunkWords; i++ {
		s := a.Make(64)
		s.Add(i % 64)
		sets = append(sets, s)
	}
	for i, s := range sets {
		if s.Len() != 1 || !s.Contains(i%64) {
			t.Fatalf("set %d corrupted across chunk rollover: %v", i, s)
		}
	}
}

func TestArenaOversizedRequest(t *testing.T) {
	var a Arena
	n := (chunkWords + 10) * wordBits
	s := a.Make(n)
	s.Add(n - 1)
	if !s.Contains(n - 1) {
		t.Fatalf("oversized arena set missing member")
	}
	// The arena must still be usable afterwards.
	s2 := a.Make(64)
	s2.Add(1)
	if !s2.Contains(1) {
		t.Fatalf("arena broken after oversized request")
	}
}

func TestArenaUnionDiffFromMembers(t *testing.T) {
	var a Arena
	s := FromMembers(200, 1, 64, 130)
	tt := FromMembers(200, 64, 199)

	u := a.Union(s, tt)
	if want := FromMembers(200, 1, 64, 130, 199); !u.Equal(want) {
		t.Fatalf("Union = %v, want %v", u, want)
	}
	d := a.Diff(s, tt)
	if want := FromMembers(200, 1, 130); !d.Equal(want) {
		t.Fatalf("Diff = %v, want %v", d, want)
	}
	// Asymmetric word lengths both ways.
	short := FromMembers(10, 2)
	u2 := a.Union(short, s)
	if want := FromMembers(200, 1, 2, 64, 130); !u2.Equal(want) {
		t.Fatalf("Union short/long = %v, want %v", u2, want)
	}
	d2 := a.Diff(short, s)
	if want := FromMembers(10, 2); !d2.Equal(want) {
		t.Fatalf("Diff short-long = %v, want %v", d2, want)
	}

	fm := a.FromMembers(100, []int{0, 63, 64, 99})
	if want := FromMembers(100, 0, 63, 64, 99); !fm.Equal(want) {
		t.Fatalf("FromMembers = %v, want %v", fm, want)
	}
}

func TestArenaMakeZero(t *testing.T) {
	var a Arena
	s := a.Make(0)
	if !s.Empty() {
		t.Fatalf("Make(0) not empty")
	}
	s.Add(5) // must grow without panicking
	if !s.Contains(5) {
		t.Fatalf("zero-cap arena set cannot grow")
	}
}

// Package bitset provides a compact, allocation-conscious set of small
// non-negative integers, used throughout CourseNavigator to represent the
// paper's course sets X (completed), Y (options) and W (selections).
//
// Catalogs index courses densely from 0, so a Set of a few machine words
// covers any realistic catalog, and the set algebra Algorithm 1 performs in
// its inner loop (union, difference, subset tests) compiles to word-parallel
// operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over the integers [0, capacity). The zero value is an
// empty set with zero capacity; most callers size sets with New.
//
// Sets are value-like: operations that return a Set never alias the
// receiver's storage unless documented otherwise (the In-Place variants).
type Set struct {
	words []uint64
}

// New returns an empty set able to hold members in [0, n).
func New(n int) Set {
	if n <= 0 {
		return Set{}
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromMembers returns a set sized for n containing exactly the given members.
// It panics if any member is outside [0, n).
func FromMembers(n int, members ...int) Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// CopyFrom replaces s's members with t's, reusing s's storage when it is
// large enough. After the call s.Equal(t) holds; s's capacity is the larger
// of the two.
func (s *Set) CopyFrom(t Set) {
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	n := copy(s.words, t.words)
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// grow ensures the set can address bit i.
func (s *Set) grow(i int) {
	need := i/wordBits + 1
	if need <= len(s.words) {
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Add inserts i into the set, growing capacity if needed. It panics on
// negative i.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative member %d", i))
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set. Removing an absent member is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 || i/wordBits >= len(s.words) {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is a member.
func (s Set) Contains(i int) bool {
	if i < 0 || i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of members (population count).
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return Set{words: out}
}

// UnionInPlace adds all members of t to s.
func (s *Set) UnionInPlace(t Set) {
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// SetTo replaces s's members with exactly the given members, each in
// [0, n), reusing s's storage. Unlike FromMembers it never allocates once
// s has capacity for n, so a hot loop can rebuild one scratch set per
// iteration without touching the heap. It panics on out-of-range members.
func (s *Set) SetTo(n int, members []int) {
	need := (n + wordBits - 1) / wordBits
	if need > len(s.words) {
		s.words = make([]uint64, need)
	}
	w := s.words
	for i := range w {
		w[i] = 0
	}
	for _, m := range members {
		if m < 0 || m >= n {
			panic(fmt.Sprintf("bitset: member %d outside [0, %d)", m, n))
		}
		w[m/wordBits] |= 1 << (uint(m) % wordBits)
	}
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & t.words[i]
	}
	return Set{words: out}
}

// IntersectInPlace removes every member of s that is not in t.
func (s *Set) IntersectInPlace(t Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &= t.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Diff returns s − t as a new set.
func (s Set) Diff(t Set) Set {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	n := len(out)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		out[i] &^= t.words[i]
	}
	return Set{words: out}
}

// DiffInPlace removes all members of t from s.
func (s *Set) DiffInPlace(t Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// IntersectLen returns |s ∩ t| without allocating the intersection set.
func (s Set) IntersectLen(t Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// DiffLen returns |s − t| without allocating the difference set.
func (s Set) DiffLen(t Set) int {
	n := 0
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		n += bits.OnesCount64(w &^ tw)
	}
	return n
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share any member.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t have exactly the same members, regardless of
// capacity.
func (s Set) Equal(t Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Members returns the members in increasing order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for every member in increasing order.
func (s Set) ForEach(fn func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Min returns the smallest member, or -1 if the set is empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest member, or -1 if the set is empty.
func (s Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Clear removes all members, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// String renders the set as "{0, 3, 17}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// compactWords is the number of inline words in a CompactKey: sets whose
// members all lie below compactWords·64 = 256 need no allocation to key.
const compactWords = 4

// CompactKey is a comparable identity for a set's members, independent of
// capacity. Sets with no member ≥ 256 are encoded inline in four words with
// zero allocation; larger sets spill to the string form of Key. Two keys are
// == iff the sets they were taken from are Equal, so a CompactKey can be
// used directly as a map key — the engine's memo and intern tables do this
// to avoid the per-node string allocation Key incurs.
type CompactKey struct {
	w     [compactWords]uint64
	spill string
}

// CompactKey returns the comparable identity of s.
func (s Set) CompactKey() CompactKey {
	var k CompactKey
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	if n <= compactWords {
		copy(k.w[:], s.words[:n])
		return k
	}
	// A rare wide set (≥256 courses): fall back to the allocating string
	// key. The spill is non-empty exactly when words beyond the inline
	// window are set, so spilled and inline keys can never collide.
	k.spill = s.Key()
	return k
}

// Hash returns a 64-bit mix of the key, suitable for shard selection.
func (k CompactKey) Hash() uint64 {
	const m = 0x9e3779b97f4a7c15 // Fibonacci hashing multiplier
	h := uint64(0)
	for _, w := range k.w {
		h = (h ^ w) * m
		h ^= h >> 29
	}
	for i := 0; i < len(k.spill); i++ {
		h = (h ^ uint64(k.spill[i])) * m
	}
	return h ^ h>>32
}

// Key returns a compact string usable as a map key identifying the set's
// members (trailing zero words are excluded so capacity does not matter).
// It is used by the status-interning ablation to hash enrollment statuses.
func (s Set) Key() string {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	if n == 0 {
		return ""
	}
	b := make([]byte, 0, n*8)
	for _, w := range s.words[:n] {
		for sh := 0; sh < 64; sh += 8 {
			b = append(b, byte(w>>uint(sh)))
		}
	}
	return string(b)
}

package bitset

import "fmt"

// Arena batch-allocates Set storage for allocation-heavy loops: instead of
// one make([]uint64) per set, sets are carved out of a shared chunk, so the
// allocator is hit once per chunkWords words rather than once per set.
//
// Regions are handed out exactly once and never recycled, which keeps arena
// sets as safe as individually allocated ones: a caller may retain or mutate
// a set indefinitely (each region is a full-slice-expression subslice, so
// growing a set beyond its capacity reallocates it away from the chunk, and
// in-place writes stay inside the set's own words). Chunks whose sets have
// all been dropped become garbage as soon as the arena moves past them —
// memory is bounded by the live sets plus one chunk.
//
// An Arena belongs to a single goroutine. The zero value is ready to use.
type Arena struct {
	chunk []uint64
}

// chunkWords sizes arena chunks: 2048 words = 16 KiB, amortising the
// allocation ~1000x for the 1-2 word sets realistic catalogs need.
const chunkWords = 2048

// Make returns an empty arena-backed set able to hold members in [0, n).
func (a *Arena) Make(n int) Set {
	if n <= 0 {
		return Set{}
	}
	w := (n + wordBits - 1) / wordBits
	if w > len(a.chunk) {
		size := chunkWords
		if w > size {
			size = w
		}
		a.chunk = make([]uint64, size)
	}
	s := a.chunk[:w:w]
	a.chunk = a.chunk[w:]
	return Set{words: s}
}

// FromMembers is FromMembers drawing storage from the arena. It panics if
// any member is outside [0, n).
func (a *Arena) FromMembers(n int, members []int) Set {
	s := a.Make(n)
	for _, m := range members {
		if m < 0 || m >= n {
			panic(fmt.Sprintf("bitset: member %d outside [0, %d)", m, n))
		}
		s.words[m/wordBits] |= 1 << (uint(m) % wordBits)
	}
	return s
}

// Union returns s ∪ t as an arena-backed set.
func (a *Arena) Union(s, t Set) Set {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	out := a.Make(len(long) * wordBits)
	copy(out.words, long)
	for i, w := range short {
		out.words[i] |= w
	}
	return out
}

// Diff returns s − t as an arena-backed set.
func (a *Arena) Diff(s, t Set) Set {
	out := a.Make(len(s.words) * wordBits)
	copy(out.words, s.words)
	n := len(out.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		out.words[i] &^= t.words[i]
	}
	return out
}

package coursenav

import (
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/degree"
	"repro/internal/term"
)

// AuditGroup is one requirement group's standing in an audit.
type AuditGroup struct {
	Name       string   `json:"name"`
	Needed     int      `json:"needed"`
	Filled     int      `json:"filled"`
	Applied    []string `json:"applied,omitempty"`
	Candidates []string `json:"candidates,omitempty"`
}

// AuditReport is a degree-progress report (see Navigator.Audit).
type AuditReport struct {
	Groups           []AuditGroup `json:"groups"`
	Surplus          []string     `json:"surplus,omitempty"`
	RemainingSlots   int          `json:"remainingSlots"`
	Complete         bool         `json:"complete"`
	ElectableNow     []string     `json:"electableNow,omitempty"`
	Reachable        bool         `json:"reachable"`
	MinPerTermNeeded int          `json:"minPerTermNeeded,omitempty"`

	inner audit.Report
}

// Write renders the report as an advising summary.
func (r AuditReport) Write(w io.Writer) error { return audit.Write(w, r.inner) }

// Audit reports the student's progress toward a degree goal (one built
// with GoalDegree): per-group fill with an optimal assignment of the
// completed courses to slots, surplus courses, what is electable in
// nowTerm that makes progress, and — when deadline is non-empty —
// whether the degree is still reachable by then taking at most
// maxPerTerm courses per semester.
func (n *Navigator) Audit(completed []string, g Goal, nowTerm, deadline string, maxPerTerm int) (AuditReport, error) {
	req, ok := g.inner.(*degree.Requirement)
	if !ok {
		return AuditReport{}, fmt.Errorf("coursenav: Audit requires a degree goal (GoalDegree); got %s", g)
	}
	x, err := n.cat.SetOf(completed...)
	if err != nil {
		return AuditReport{}, err
	}
	var opt audit.Options
	opt.MaxPerTerm = maxPerTerm
	if nowTerm != "" {
		opt.Now, err = term.Parse(term.TwoSeason, nowTerm)
		if err != nil {
			return AuditReport{}, err
		}
	}
	if deadline != "" {
		opt.Deadline, err = term.Parse(term.TwoSeason, deadline)
		if err != nil {
			return AuditReport{}, err
		}
	}
	rep, err := audit.Run(n.cat, req, x, opt)
	if err != nil {
		return AuditReport{}, err
	}
	out := AuditReport{
		Surplus:          rep.Surplus,
		RemainingSlots:   rep.RemainingSlots,
		Complete:         rep.Complete,
		ElectableNow:     rep.ElectableNow,
		Reachable:        rep.Reachable,
		MinPerTermNeeded: rep.MinPerTermNeeded,
		inner:            rep,
	}
	for _, gp := range rep.Groups {
		out.Groups = append(out.Groups, AuditGroup{
			Name: gp.Name, Needed: gp.Needed, Filled: gp.Filled,
			Applied: gp.Applied, Candidates: gp.Candidates,
		})
	}
	return out, nil
}

// Benchmarks regenerating the paper's evaluation (one per table/figure
// plus the design-choice ablations listed in DESIGN.md). Run:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are machine-dependent; the reproduced quantities are
// the *relationships* the paper reports — pruning ≫ no-pruning (Table 1),
// goal-driven ≪ deadline-driven (Table 2), near-interactive top-k at
// every k (Figure 4). cmd/benchgen prints the corresponding tables in
// the paper's row format.
package coursenav_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brandeis"
	"repro/internal/explore"
	"repro/internal/rank"
	"repro/internal/status"
	"repro/internal/transcript"
)

// The catalog and goal are cached across benchmarks.
var (
	benchCat      = brandeis.Catalog()
	benchMajor, _ = brandeis.Major(benchCat)
)

func benchStart(d int) status.Status {
	return status.New(benchCat, brandeis.StartForSemesters(d), bitset.New(benchCat.Len()))
}

func benchOpt() explore.Options {
	return explore.Options{MaxPerTerm: brandeis.MaxPerTerm}
}

func benchPruners() []explore.Pruner {
	return explore.PaperPruners(benchCat, benchMajor, brandeis.MaxPerTerm)
}

// --- Table 1: goal-driven generation with and without pruning ---------

func BenchmarkTable1GoalPruning(b *testing.B) {
	for _, d := range []int{4, 5} {
		b.Run(fmt.Sprintf("semesters=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := explore.GoalCount(benchCat, benchStart(d), brandeis.EndTerm(), benchMajor, benchPruners(), benchOpt())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Paths), "paths")
			}
		})
	}
}

func BenchmarkTable1GoalNoPruning(b *testing.B) {
	for _, d := range []int{4, 5} {
		b.Run(fmt.Sprintf("semesters=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := explore.GoalCount(benchCat, benchStart(d), brandeis.EndTerm(), benchMajor, nil, benchOpt())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Paths), "paths")
			}
		})
	}
}

// --- Table 2: deadline-driven vs goal-driven scalability --------------

func BenchmarkTable2Deadline(b *testing.B) {
	for _, d := range []int{4, 5} {
		b.Run(fmt.Sprintf("semesters=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := explore.DeadlineCount(benchCat, benchStart(d), brandeis.EndTerm(), benchOpt())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Paths), "paths")
			}
		})
	}
}

func BenchmarkTable2DeadlineMaterialize(b *testing.B) {
	// The paper's Table 2 deadline rows materialise the graph (and run out
	// of memory past 5 semesters); this measures the materialising path.
	for _, d := range []int{4, 5} {
		b.Run(fmt.Sprintf("semesters=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := explore.Deadline(benchCat, benchStart(d), brandeis.EndTerm(), benchOpt())
				if err != nil {
					b.Fatal(err)
				}
				if res.Graph == nil {
					b.Fatal("no graph")
				}
			}
		})
	}
}

func BenchmarkTable2Goal(b *testing.B) {
	for _, d := range []int{4, 5} {
		b.Run(fmt.Sprintf("semesters=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := explore.GoalCount(benchCat, benchStart(d), brandeis.EndTerm(), benchMajor, benchPruners(), benchOpt()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4: ranked top-k runtime ------------------------------------

func BenchmarkFigure4Ranked(b *testing.B) {
	for _, d := range []int{6, 7, 8} {
		for _, k := range []int{10, 100, 1000} {
			b.Run(fmt.Sprintf("semesters=%d/k=%d", d, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := explore.Ranked(benchCat, benchStart(d), brandeis.EndTerm(), benchMajor,
						rank.Time{}, k, benchPruners(), benchOpt())
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Paths) != k {
						b.Fatalf("found %d paths", len(res.Paths))
					}
				}
			})
		}
	}
}

func BenchmarkFigure4RankedWorkload(b *testing.B) {
	// The paper's Figure 4 uses time-based ranking; workload exercises the
	// weaker-heuristic ranker. Its A* bound (left × cheapest workload) is
	// loose, so the search degenerates toward uniform-cost on wide windows;
	// the 5-semester window keeps the explored tree pruning-bounded.
	w := rank.Workload{W: benchCat.Workloads()}
	for _, k := range []int{10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := explore.Ranked(benchCat, benchStart(5), brandeis.EndTerm(), benchMajor,
					w, k, benchPruners(), benchOpt()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- DAG substrate: counting and what-if vs the tree walk ---------------

// BenchmarkCountTreeVsDAG compares deadline counting on the two
// substrates. The tree walk's cost scales with the number of paths; the
// DAG's with the number of distinct (semester, completed-set) statuses,
// which grows orders of magnitude slower — EXPERIMENTS.md records the
// measured gap. The 8-semester empty-start rows are skipped: the status
// DAG's edge count grows roughly three orders of magnitude per two added
// semesters, so even the DAG build is far beyond interactive there (and
// the tree walk's ~10^13 paths are hopeless).
func BenchmarkCountTreeVsDAG(b *testing.B) {
	substrates := []struct {
		name string
		s    explore.Substrate
	}{
		{"tree", explore.SubstrateTree},
		{"dag", explore.SubstrateDAG},
	}
	for _, d := range []int{4, 6, 8} {
		for _, sub := range substrates {
			b.Run(fmt.Sprintf("semesters=%d/substrate=%s", d, sub.name), func(b *testing.B) {
				if d >= 8 {
					b.Skip("8-semester empty-start counting is infeasible on either substrate (DAG edges grow ~1000x per two semesters; the tree has ~10^13 paths)")
				}
				opt := benchOpt()
				opt.Substrate = sub.s
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := explore.DeadlineCount(benchCat, benchStart(d), brandeis.EndTerm(), opt)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Paths), "paths")
				}
			})
		}
	}
}

// BenchmarkWhatIfDelta compares what-if analysis (per-candidate path
// deltas for the next term) on the two substrates. The DAG variant builds
// the interned DAG once below the candidate roots and reads every delta
// from shared bottom-up tallies instead of re-walking a tree per
// candidate.
func BenchmarkWhatIfDelta(b *testing.B) {
	substrates := []struct {
		name string
		s    explore.Substrate
	}{
		{"tree", explore.SubstrateTree},
		{"dag", explore.SubstrateDAG},
	}
	for _, d := range []int{5, 6} {
		for _, sub := range substrates {
			b.Run(fmt.Sprintf("semesters=%d/substrate=%s", d, sub.name), func(b *testing.B) {
				opt := benchOpt()
				opt.Substrate = sub.s
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					impacts, _, err := explore.CompareSelectionsCtx(context.Background(), benchCat,
						benchStart(d), brandeis.EndTerm(), benchMajor, benchPruners(), opt)
					if err != nil {
						b.Fatal(err)
					}
					if len(impacts) == 0 {
						b.Fatal("no candidate selections")
					}
				}
			})
		}
	}
}

// --- §5.2: transcript containment --------------------------------------

func BenchmarkTranscriptGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trs, err := transcript.Generate(benchCat, benchMajor, brandeis.StartForSemesters(6),
			brandeis.EndTerm(), brandeis.MaxPerTerm, 83, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(trs) != 83 {
			b.Fatal("short generation")
		}
	}
}

func BenchmarkTranscriptReplay(b *testing.B) {
	trs, err := transcript.Generate(benchCat, benchMajor, brandeis.StartForSemesters(6),
		brandeis.EndTerm(), brandeis.MaxPerTerm, 83, 2016)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trs {
			if _, err := transcript.Replay(benchCat, tr, brandeis.MaxPerTerm); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations (DESIGN.md design choices) -------------------------------

// BenchmarkAblationMergeStatuses compares plain tree counting against
// status-interned (memoised) counting on the same query.
func BenchmarkAblationMergeStatuses(b *testing.B) {
	for _, merge := range []bool{false, true} {
		b.Run(fmt.Sprintf("merge=%v", merge), func(b *testing.B) {
			opt := benchOpt()
			opt.MergeStatuses = merge
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := explore.DeadlineCount(benchCat, benchStart(4), brandeis.EndTerm(), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMinTakeFilter compares child-side time pruning (the
// paper's algorithm) against generation-side selection filtering.
func BenchmarkAblationMinTakeFilter(b *testing.B) {
	for _, filter := range []bool{false, true} {
		b.Run(fmt.Sprintf("filter=%v", filter), func(b *testing.B) {
			opt := benchOpt()
			opt.MinTakeFilter = filter
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := explore.GoalCount(benchCat, benchStart(5), brandeis.EndTerm(), benchMajor, benchPruners(), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPrereqAwareAvail compares the paper's schedule-only
// availability pruning with the prerequisite-aware refinement.
func BenchmarkAblationPrereqAwareAvail(b *testing.B) {
	for _, aware := range []bool{false, true} {
		b.Run(fmt.Sprintf("prereqAware=%v", aware), func(b *testing.B) {
			pruners := []explore.Pruner{
				explore.TimePruner{Goal: benchMajor, MaxPerTerm: brandeis.MaxPerTerm},
				explore.AvailPruner{Cat: benchCat, Goal: benchMajor, PrereqAware: aware},
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := explore.GoalCount(benchCat, benchStart(5), brandeis.EndTerm(), benchMajor, pruners, benchOpt()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEmptyPolicy measures the cost of the three
// empty-selection policies on the deadline algorithm.
func BenchmarkAblationEmptyPolicy(b *testing.B) {
	for _, policy := range []explore.EmptyPolicy{explore.EmptyWhenStuck, explore.EmptyNever, explore.EmptyAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			opt := benchOpt()
			opt.Empty = policy
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := explore.DeadlineCount(benchCat, benchStart(3), brandeis.EndTerm(), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelCount measures counting-mode speedup from the
// Workers fan-out on the 5-semester deadline query.
func BenchmarkAblationParallelCount(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := benchOpt()
			opt.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := explore.DeadlineCount(benchCat, benchStart(5), brandeis.EndTerm(), opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Paths != 95715 {
					b.Fatalf("paths = %d", res.Paths)
				}
			}
		})
	}
}

// BenchmarkAblationParallelMergeCount combines the Workers fan-out with the
// MergeStatuses memo: workers share the engine's sharded concurrent memo,
// so the collapsed DAG is counted once across the pool. Path counts are
// pinned to the serial value — the memo never trades exactness for speed.
func BenchmarkAblationParallelMergeCount(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := benchOpt()
			opt.Workers = workers
			opt.MergeStatuses = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := explore.DeadlineCount(benchCat, benchStart(5), brandeis.EndTerm(), opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Paths != 95715 {
					b.Fatalf("paths = %d", res.Paths)
				}
			}
		})
	}
}

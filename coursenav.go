// Package coursenav is the public API of the CourseNavigator
// reproduction: an interactive learning-path exploration service after
// Li, Papaemmanouil and Koutrika, "CourseNavigator: Interactive Learning
// Path Exploration" (ExploreDB 2016).
//
// A Navigator wraps a course catalog (course set C, prerequisite
// conditions Q, schedules S) and answers the paper's three exploration
// queries for a student's enrollment status:
//
//   - Deadline: every learning path up to an end semester (Algorithm 1).
//   - GoalPaths: the paths meeting a goal requirement — a set of desired
//     courses, a boolean expression, or a counted degree requirement —
//     generated with the time-based and course-availability pruning
//     strategies of §4.2.
//   - TopK: the k best goal paths under the time, workload or reliability
//     ranking of §4.3, via best-first search.
//
// Construct a Navigator from the embedded Brandeis-like evaluation
// dataset (Brandeis), from catalog JSON (NewFromJSON), or from raw
// registrar dumps (NewFromRegistrarDump). See examples/ for complete
// programs.
package coursenav

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/brandeis"
	"repro/internal/catalog"
	"repro/internal/degree"
	"repro/internal/explore"
	"repro/internal/integrity"
	"repro/internal/rank"
	"repro/internal/registrar"
	"repro/internal/sched"
	"repro/internal/status"
	"repro/internal/term"
	"repro/internal/transcript"
)

// Navigator is the exploration service over one course catalog.
type Navigator struct {
	cat  *catalog.Catalog
	prob rank.OfferingProb // reliability estimator; nil until configured
}

// Brandeis returns a Navigator over the embedded 38-course evaluation
// dataset (paper §5.1) together with the CS-major goal ("7 core courses
// and 5 elective courses").
func Brandeis() (*Navigator, Goal) {
	cat := brandeis.Catalog()
	major, err := brandeis.Major(cat)
	if err != nil {
		panic(err) // embedded data is validated by tests
	}
	return &Navigator{cat: cat}, Goal{inner: major}
}

// NewFromCatalog wraps an already-built catalog. It is module-internal
// plumbing (the signature names an internal type): cohort scenario
// application builds delta catalogs — a cancelled course, a revised
// schedule, a Monte-Carlo offering sample — and serves explorations over
// them through the ordinary Navigator surface.
func NewFromCatalog(cat *catalog.Catalog) *Navigator {
	return &Navigator{cat: cat}
}

// Catalog exposes the navigator's underlying catalog for module-internal
// callers (cohort construction parses transcripts and synthesises members
// against it). The catalog is immutable once built.
func (n *Navigator) Catalog() *catalog.Catalog { return n.cat }

// BrandeisMajor rebuilds the embedded CS-major goal against this
// navigator's catalog. Goals are catalog-bound, so a scenario variant of
// the embedded catalog (a cancelled course, a sampled schedule) needs
// its own major goal; it errors when the catalog lacks the major's
// courses.
func (n *Navigator) BrandeisMajor() (Goal, error) {
	major, err := brandeis.Major(n.cat)
	if err != nil {
		return Goal{}, err
	}
	return Goal{inner: major}, nil
}

// NewFromJSON builds a Navigator from a catalog JSON document (an array
// of course specs; see Navigator.WriteCatalogJSON for the schema).
func NewFromJSON(r io.Reader) (*Navigator, error) {
	cat, err := catalog.ReadJSON(term.TwoSeason, r)
	if err != nil {
		return nil, err
	}
	return &Navigator{cat: cat}, nil
}

// NewFromRegistrarDump builds a Navigator from raw registrar text: a
// catalog dump (course/title/description/workload blocks, prerequisites
// and "usually offered" phrases extracted by the back-end parsers of
// paper §3) and an optional final-schedule record file ("COURSE | TERM"
// lines) that overrides phrase-derived offerings. firstTerm and lastTerm
// ("Fall 2011", "Fall 2015") bound the schedule window.
func NewFromRegistrarDump(catalogDump io.Reader, schedule io.Reader, firstTerm, lastTerm string) (*Navigator, error) {
	first, err := term.Parse(term.TwoSeason, firstTerm)
	if err != nil {
		return nil, err
	}
	last, err := term.Parse(term.TwoSeason, lastTerm)
	if err != nil {
		return nil, err
	}
	specs, err := registrar.ParseCatalogDump(catalogDump, first, last)
	if err != nil {
		return nil, err
	}
	if schedule != nil {
		recs, err := registrar.ParseScheduleRecords(schedule, term.TwoSeason)
		if err != nil {
			return nil, err
		}
		if err := registrar.MergeSchedule(specs, recs); err != nil {
			return nil, err
		}
	}
	cat, err := catalog.FromSpecs(term.TwoSeason, specs)
	if err != nil {
		return nil, err
	}
	return &Navigator{cat: cat}, nil
}

// ImportReport aggregates everything a lenient registrar import learned:
// parse-stage diagnostics (including the quarantined records'), the course
// IDs dropped before the catalog was built, and the integrity validation
// of the final catalog.
type ImportReport struct {
	// Diagnostics holds the parse- and quarantine-stage diagnostics,
	// error severity marking dropped records.
	Diagnostics []registrar.Diagnostic `json:"diagnostics,omitempty"`
	// Quarantined lists the course IDs excluded from the built catalog,
	// in drop order.
	Quarantined []string `json:"quarantined,omitempty"`
	// Integrity is the validation report for the catalog that was built.
	Integrity integrity.Report `json:"integrity"`
}

// NewFromRegistrarDumpLenient is NewFromRegistrarDump in lenient mode:
// malformed course records, malformed schedule lines and records whose
// prerequisites dangle (reference courses absent from — or quarantined
// out of — the dump) are dropped with diagnostics instead of failing the
// import, and the surviving catalog is integrity-validated. The error is
// non-nil only when the input is unreadable, the window invalid, or no
// importable course survives quarantine.
func NewFromRegistrarDumpLenient(catalogDump io.Reader, schedule io.Reader, firstTerm, lastTerm string) (*Navigator, *ImportReport, error) {
	first, err := term.Parse(term.TwoSeason, firstTerm)
	if err != nil {
		return nil, nil, err
	}
	last, err := term.Parse(term.TwoSeason, lastTerm)
	if err != nil {
		return nil, nil, err
	}
	rep := &ImportReport{}
	specs, diags, err := registrar.ParseCatalogDumpLenient(catalogDump, first, last)
	if err != nil {
		return nil, nil, err
	}
	rep.Diagnostics = diags
	// Quarantined course records come from the catalog parse only: a
	// dropped schedule *line* names its course in its diagnostic but does
	// not remove the course from the import.
	rep.Quarantined = registrar.Quarantined(diags)
	if schedule != nil {
		recs, sdiags, err := registrar.ParseScheduleRecordsLenient(schedule, term.TwoSeason)
		if err != nil {
			return nil, nil, err
		}
		rep.Diagnostics = append(rep.Diagnostics, sdiags...)
		rep.Diagnostics = append(rep.Diagnostics, registrar.MergeScheduleLenient(specs, recs)...)
	}
	// Spec-level integrity gate: quarantine records catalog construction
	// would reject (dangling or self prerequisites, duplicates), to a
	// fixpoint — dropping a course can orphan references to it.
	clean, dropped, issues := integrity.QuarantineSpecs(term.TwoSeason, specs)
	for _, is := range issues {
		rep.Diagnostics = append(rep.Diagnostics, registrar.Diagnostic{
			Course:   is.Course,
			Field:    "integrity",
			Severity: registrar.SevError,
			Msg:      is.Detail,
		})
	}
	rep.Quarantined = append(rep.Quarantined, dropped...)
	if len(clean) == 0 {
		return nil, nil, fmt.Errorf("coursenav: no importable course records (%d quarantined)", len(rep.Quarantined))
	}
	cat, err := catalog.FromSpecs(term.TwoSeason, clean)
	if err != nil {
		return nil, nil, err
	}
	rep.Integrity = integrity.Check(cat)
	return &Navigator{cat: cat}, rep, nil
}

// Integrity validates the navigator's catalog (see internal/integrity):
// prerequisite cycles, unreachable courses, never-offered dependencies and
// schedule inconsistencies, graded by severity. The hot-reload path uses
// the report as its gate.
func (n *Navigator) Integrity() integrity.Report { return integrity.Check(n.cat) }

// WriteCatalogJSON serialises the catalog as JSON.
func (n *Navigator) WriteCatalogJSON(w io.Writer) error { return n.cat.WriteJSON(w) }

// CourseInfo describes one course for presentation.
type CourseInfo struct {
	ID       string   `json:"id"`
	Title    string   `json:"title,omitempty"`
	Prereq   string   `json:"prereq,omitempty"`
	Offered  []string `json:"offered"`
	Workload float64  `json:"workload,omitempty"`
}

// Courses lists every course in catalog order.
func (n *Navigator) Courses() []CourseInfo {
	specs := n.cat.Specs()
	out := make([]CourseInfo, len(specs))
	for i, sp := range specs {
		out[i] = CourseInfo(sp)
	}
	return out
}

// Course returns one course's information.
func (n *Navigator) Course(id string) (CourseInfo, bool) {
	i, ok := n.cat.Index(id)
	if !ok {
		return CourseInfo{}, false
	}
	return n.Courses()[i], true
}

// NumCourses returns the catalog size.
func (n *Navigator) NumCourses() int { return n.cat.Len() }

// CanonicalCourse resolves a course ID to the catalog's spelling: an
// exact match keeps its spelling, otherwise a case-insensitive match
// resolves when it is unambiguous. ok is false for unknown IDs; the
// input is returned unchanged.
func (n *Navigator) CanonicalCourse(id string) (string, bool) { return n.cat.Canonical(id) }

// Lint reports catalog-quality problems: courses that can never be taken
// (unsatisfiable prerequisites) and courses never offered.
func (n *Navigator) Lint() (unreachable, neverOffered []string) {
	return n.cat.Unreachable(), n.cat.NeverOffered()
}

// UseSyntheticHistory configures the reliability ranking's offering-
// probability estimator from a synthesised multi-year offering history
// (paper §4.3.1: probability 1 inside the released schedule — taken to be
// the whole published window — and historical same-season frequency
// beyond). years is the history length; seed fixes the synthesis.
func (n *Navigator) UseSyntheticHistory(years int, seed int64) error {
	hist, err := sched.GenerateHistory(n.cat, years, seed)
	if err != nil {
		return err
	}
	est, err := sched.NewEstimator(n.cat, hist, n.cat.LastTerm())
	if err != nil {
		return err
	}
	n.prob = est.Prob
	return nil
}

// ProjectBeyondRelease extends the catalog's schedule past the released
// window (paper §4.3.1: "class schedules are released for only one or two
// semesters forward"): a synthetic multi-year offering history is
// generated, offerings for the semesters up to horizon are projected
// where the same-season historical frequency reaches threshold, and the
// reliability estimator is configured so projected offerings carry their
// historical probability (< 1) while released ones keep probability 1.
// Exploration windows may then extend to horizon, and the reliability
// ranking discriminates among paths that rely on uncertain offerings.
func (n *Navigator) ProjectBeyondRelease(horizon string, years int, seed int64, threshold float64) error {
	h, err := term.Parse(term.TwoSeason, horizon)
	if err != nil {
		return err
	}
	hist, err := sched.GenerateHistory(n.cat, years, seed)
	if err != nil {
		return err
	}
	released := n.cat.LastTerm()
	projected, err := sched.Project(n.cat, hist, released, h, threshold)
	if err != nil {
		return err
	}
	est, err := sched.NewEstimator(n.cat, hist, released)
	if err != nil {
		return err
	}
	n.cat = projected
	n.prob = est.Prob
	return nil
}

// Goal is an exploration goal (paper §4.2): a predicate on the student's
// future enrollment status.
type Goal struct {
	inner degree.Goal
}

// String describes the goal.
func (g Goal) String() string {
	if g.inner == nil {
		return "none"
	}
	return g.inner.String()
}

// Inner exposes the wrapped degree.Goal for module-internal callers
// (the signature names an internal type): cohort synthesis feeds it to
// the transcript generator, which predates the façade wrapper.
func (g Goal) Inner() degree.Goal { return g.inner }

// GoalCourses builds the complete-all-of goal.
func (n *Navigator) GoalCourses(ids ...string) (Goal, error) {
	g, err := degree.NewCourseSet(n.cat, ids...)
	if err != nil {
		return Goal{}, err
	}
	return Goal{inner: g}, nil
}

// GoalExpr builds a boolean-expression goal, e.g.
// "(COSI 11A and COSI 12B) or COSI 21A".
func (n *Navigator) GoalExpr(src string) (Goal, error) {
	g, err := degree.NewExpr(n.cat, src)
	if err != nil {
		return Goal{}, err
	}
	return Goal{inner: g}, nil
}

// DegreeGroup is one counted clause of a degree requirement.
type DegreeGroup struct {
	Name    string
	Count   int
	Courses []string
}

// GoalDegree builds a counted degree requirement ("7 of core and 5 of
// electives"); completed courses fill at most one slot each.
func (n *Navigator) GoalDegree(groups ...DegreeGroup) (Goal, error) {
	specs := make([]degree.GroupSpec, len(groups))
	for i, g := range groups {
		specs[i] = degree.GroupSpec(g)
	}
	g, err := degree.NewRequirement(n.cat, specs...)
	if err != nil {
		return Goal{}, err
	}
	return Goal{inner: g}, nil
}

// Query describes a student's enrollment status and exploration window.
type Query struct {
	// Completed lists the student's completed course IDs (the X of §2).
	Completed []string
	// Start is the student's current semester, e.g. "Fall 2013".
	Start string
	// End is the end semester d, e.g. "Fall 2015".
	End string
	// MaxPerTerm is the per-semester course limit m; 0 = unlimited.
	MaxPerTerm int
	// MergeStatuses enables the status-interning ablation (DESIGN.md §2).
	MergeStatuses bool
	// MaxNodes bounds materialised graphs (0 = unlimited); exceeding it
	// returns an error, mirroring the paper's out-of-memory rows.
	MaxNodes int
	// NoPruning disables the §4.2 pruning strategies on goal queries (the
	// Table 1 baseline).
	NoPruning bool
	// Avoid lists courses the student refuses to take (paper §3,
	// "courses to avoid"); no generated path elects them.
	Avoid []string
	// MaxTermWorkload, when positive, caps each semester's summed
	// workload hours.
	MaxTermWorkload float64
	// MinPerTerm, when positive, is a floor on courses per enrolled
	// semester (semesters off stay allowed).
	MinPerTerm int
	// MaxPathCost, when positive, restricts TopK to paths whose ranking
	// cost is at most the threshold (§4.3.1's workload-threshold
	// queries).
	MaxPathCost float64
	// Workers, when >1, parallelises counting queries (DeadlineCount,
	// GoalPathsCount) across that many goroutines; tallies are exact.
	Workers int
	// Substrate selects the search structure: "" or "auto" lets each
	// entry point choose (counting and what-if queries run on the
	// interned-status DAG, which answers them in time proportional to the
	// number of distinct statuses rather than the number of paths; path
	// enumeration keeps the tree walk), "tree" forces the legacy walk
	// everywhere, and "dag" forces the DAG — materialising queries
	// (Deadline, GoalPaths) then fail, since a materialised learning
	// graph is inherently per-path. Tallies are identical on either
	// substrate; only Nodes/Edges bookkeeping differs (the DAG counts
	// distinct statuses once).
	Substrate string
	// Budget bounds the run's wall clock, generated statuses and tallied
	// paths. A run that exhausts a bound (or whose context is cancelled,
	// on the *Ctx methods) ends with a partial result whose
	// Summary.Stopped names the cause, rather than an error — the
	// contract that keeps interactive serving responsive on adversarial
	// windows. The zero Budget imposes no bounds.
	Budget Budget
}

// Budget bounds one exploration run (see Query.Budget). It mirrors the
// engine's explore.Budget.
type Budget struct {
	// Timeout bounds the run's wall clock (0 = none beyond the context's
	// own deadline).
	Timeout time.Duration
	// MaxNodes bounds generated statuses across the run (0 = unlimited).
	// Unlike Query.MaxNodes — whose overrun is a hard error — hitting
	// this bound returns the partial work done so far.
	MaxNodes int64
	// MaxPaths bounds tallied paths (0 = unlimited).
	MaxPaths int64
}

func (n *Navigator) compile(q Query) (status.Status, term.Term, explore.Options, error) {
	var zero status.Status
	start, err := term.Parse(term.TwoSeason, q.Start)
	if err != nil {
		return zero, term.Term{}, explore.Options{}, fmt.Errorf("coursenav: start term: %v", err)
	}
	if q.End == "" {
		return zero, term.Term{}, explore.Options{}, fmt.Errorf("coursenav: empty end term: an exploration needs a deadline semester, e.g. \"Fall 2015\"")
	}
	end, err := term.Parse(term.TwoSeason, q.End)
	if err != nil {
		return zero, term.Term{}, explore.Options{}, fmt.Errorf("coursenav: end (deadline) term: %v", err)
	}
	x, err := n.cat.SetOf(q.Completed...)
	if err != nil {
		return zero, term.Term{}, explore.Options{}, err
	}
	opt, err := n.compileOptions(q)
	if err != nil {
		return zero, term.Term{}, explore.Options{}, err
	}
	return status.New(n.cat, start, x), end, opt, nil
}

// compileOptions builds the engine options and constraints from a query,
// ignoring its start/end/completed fields. Split from compile so callers
// holding a query *template* — a cohort request whose members each bring
// their own start and completed set — can compile the shared parts once.
func (n *Navigator) compileOptions(q Query) (explore.Options, error) {
	sub, err := parseSubstrate(q.Substrate)
	if err != nil {
		return explore.Options{}, err
	}
	opt := explore.Options{
		MaxPerTerm:    q.MaxPerTerm,
		MergeStatuses: q.MergeStatuses,
		MaxNodes:      q.MaxNodes,
		MaxPathCost:   q.MaxPathCost,
		Workers:       q.Workers,
		Substrate:     sub,
		Budget:        explore.Budget(q.Budget),
	}
	if len(q.Avoid) > 0 {
		avoid, err := explore.NewAvoid(n.cat, q.Avoid...)
		if err != nil {
			return explore.Options{}, err
		}
		opt.Constraints = append(opt.Constraints, avoid)
	}
	if q.MaxTermWorkload > 0 {
		opt.Constraints = append(opt.Constraints, explore.MaxTermWorkload{
			W: n.cat.Workloads(), Hours: q.MaxTermWorkload,
		})
	}
	if q.MinPerTerm > 0 {
		opt.Constraints = append(opt.Constraints, explore.MinPerTerm{Count: q.MinPerTerm})
	}
	return opt, nil
}

// parseSubstrate maps Query.Substrate to the engine's enum.
func parseSubstrate(s string) (explore.Substrate, error) {
	switch s {
	case "", "auto":
		return explore.SubstrateAuto, nil
	case "tree":
		return explore.SubstrateTree, nil
	case "dag":
		return explore.SubstrateDAG, nil
	default:
		return 0, fmt.Errorf("coursenav: unknown substrate %q (want \"auto\", \"tree\" or \"dag\")", s)
	}
}

func (n *Navigator) pruners(q Query, g Goal) []explore.Pruner {
	if q.NoPruning {
		return nil
	}
	return explore.PaperPruners(n.cat, g.inner, q.MaxPerTerm)
}

// Summary reports an exploration run's tallies (see paper Tables 1-2).
type Summary struct {
	// Paths counts generated maximal paths; GoalPaths those ending at a
	// goal-satisfying status.
	Paths, GoalPaths int64
	// Nodes and Edges count generated statuses and transitions.
	Nodes, Edges int64
	// PrunedTime and PrunedAvail count nodes cut per strategy.
	PrunedTime, PrunedAvail int64
	// Elapsed is the generation wall-clock time.
	Elapsed time.Duration
	// Stopped names why the run ended early — "canceled", "deadline",
	// "max-nodes" or "max-paths" (see the explore.Stop* constants) — and
	// is empty for a complete run. A stopped run's tallies are lower
	// bounds; every reported path is still a real path.
	Stopped string
	// Truncated reports a partial run (equivalent to Stopped != "").
	Truncated bool
	// DAG reports that the run executed on the interned-status DAG
	// substrate; Nodes and Edges then count distinct statuses and
	// transitions rather than tree positions.
	DAG bool
}

func summarize(r explore.Result) Summary {
	return Summary{
		Paths: r.Paths, GoalPaths: r.GoalPaths,
		Nodes: r.Nodes, Edges: r.Edges,
		PrunedTime: r.PrunedTime, PrunedAvail: r.PrunedAvail,
		Elapsed: r.Elapsed,
		Stopped: r.Stopped, Truncated: r.Truncated,
		DAG: r.DAG,
	}
}

// Deadline materialises the deadline-driven learning graph (Algorithm 1).
func (n *Navigator) Deadline(q Query) (*Graph, Summary, error) {
	return n.DeadlineCtx(context.Background(), q)
}

// DeadlineCtx is Deadline under a context: cancellation, the context
// deadline, or any Query.Budget bound ends the run with the partial graph
// built so far, Summary.Stopped naming the cause, and a nil error.
func (n *Navigator) DeadlineCtx(ctx context.Context, q Query) (*Graph, Summary, error) {
	start, end, opt, err := n.compile(q)
	if err != nil {
		return nil, Summary{}, err
	}
	res, err := explore.DeadlineCtx(ctx, n.cat, start, end, opt)
	if err != nil {
		return nil, summarize(res), err
	}
	return &Graph{cat: n.cat, g: res.Graph}, summarize(res), nil
}

// DeadlineCount counts deadline-driven paths without materialising the
// graph (constant memory; use for Table-2-scale periods).
func (n *Navigator) DeadlineCount(q Query) (Summary, error) {
	return n.DeadlineCountCtx(context.Background(), q)
}

// DeadlineCountCtx is DeadlineCount under a context (see DeadlineCtx).
// Counting needs no per-path identity, so unless Query.Substrate forces
// the tree walk the count runs on the interned-status DAG — cost scales
// with distinct statuses, not paths, and the tallies are identical.
func (n *Navigator) DeadlineCountCtx(ctx context.Context, q Query) (Summary, error) {
	start, end, opt, err := n.compile(q)
	if err != nil {
		return Summary{}, err
	}
	opt.Substrate = countSubstrate(opt.Substrate)
	res, err := explore.DeadlineCountCtx(ctx, n.cat, start, end, opt)
	return summarize(res), err
}

// countSubstrate resolves SubstrateAuto for counting entry points: counts
// run on the DAG unless the caller forced the tree walk.
func countSubstrate(s explore.Substrate) explore.Substrate {
	if s == explore.SubstrateAuto {
		return explore.SubstrateDAG
	}
	return s
}

// GoalPaths materialises the goal-driven learning graph (§4.2) with the
// paper's pruning strategies (unless Query.NoPruning).
func (n *Navigator) GoalPaths(q Query, g Goal) (*Graph, Summary, error) {
	return n.GoalPathsCtx(context.Background(), q, g)
}

// GoalPathsCtx is GoalPaths under a context (see DeadlineCtx for the
// cancellation contract).
func (n *Navigator) GoalPathsCtx(ctx context.Context, q Query, g Goal) (*Graph, Summary, error) {
	start, end, opt, err := n.compile(q)
	if err != nil {
		return nil, Summary{}, err
	}
	res, err := explore.GoalCtx(ctx, n.cat, start, end, g.inner, n.pruners(q, g), opt)
	if err != nil {
		return nil, summarize(res), err
	}
	return &Graph{cat: n.cat, g: res.Graph}, summarize(res), nil
}

// GoalPathsCount counts goal-driven paths without materialising the graph.
func (n *Navigator) GoalPathsCount(q Query, g Goal) (Summary, error) {
	return n.GoalPathsCountCtx(context.Background(), q, g)
}

// GoalPathsCountCtx is GoalPathsCount under a context (see DeadlineCtx).
// Like DeadlineCountCtx, the count is DAG-accelerated unless
// Query.Substrate forces the tree walk; both pruning strategies remain
// admissible on the DAG (they depend only on the status, never the path).
func (n *Navigator) GoalPathsCountCtx(ctx context.Context, q Query, g Goal) (Summary, error) {
	start, end, opt, err := n.compile(q)
	if err != nil {
		return Summary{}, err
	}
	opt.Substrate = countSubstrate(opt.Substrate)
	res, err := explore.GoalCountCtx(ctx, n.cat, start, end, g.inner, n.pruners(q, g), opt)
	return summarize(res), err
}

// GoalPathsCountHorizons counts goal paths for every deadline in
// [end, end+horizon] — end from the query, horizon extra semesters — in
// ONE run: the returned slice has horizon+1 entries, entry i the
// GoalPaths total the same query with deadline end+i would report. A
// cohort runner probing "how many semesters late does this member
// graduate?" pays one counting run instead of horizon+1. The Summary is
// the run's (its Paths/GoalPaths are relative to end+horizon).
func (n *Navigator) GoalPathsCountHorizons(q Query, g Goal, horizon int) ([]int64, Summary, error) {
	return n.GoalPathsCountHorizonsCtx(context.Background(), q, g, horizon)
}

// GoalPathsCountHorizonsCtx is GoalPathsCountHorizons under a context
// (see DeadlineCtx).
func (n *Navigator) GoalPathsCountHorizonsCtx(ctx context.Context, q Query, g Goal, horizon int) ([]int64, Summary, error) {
	start, end, opt, err := n.compile(q)
	if err != nil {
		return nil, Summary{}, err
	}
	mr, err := explore.GoalCountMultiCtx(ctx, n.cat, start, end, horizon, g.inner, n.pruners(q, g), opt)
	return mr.GoalPathsAt, summarize(mr.Result), err
}

// SharedCounts is one SharedCounter query's answer; see
// explore.SharedCounts.
type SharedCounts = explore.SharedCounts

// SharedCounterStats snapshots a SharedCounter's lifetime tallies; see
// explore.SharedStats.
type SharedCounterStats = explore.SharedStats

// SharedCounter answers goal-path counts for many start positions
// against ONE (catalog, goal, deadline, options) variant from a shared
// interned-status substrate: the cost of a whole cohort scales with the
// distinct statuses reachable across all members, not with per-member
// rebuilds. Safe for concurrent use; see explore.SharedCounter.
type SharedCounter struct {
	nav   *Navigator
	inner *explore.SharedCounter
}

// NewSharedCounter builds a shared counter from a query template — its
// End and option/constraint fields pin the variant; Start and Completed
// are ignored (each Counts call brings its own). horizon extends the
// answered deadlines to [end, end+horizon]; maxStatuses bounds interned
// statuses (0 = default).
func (n *Navigator) NewSharedCounter(q Query, g Goal, horizon int, maxStatuses int64) (*SharedCounter, error) {
	if q.End == "" {
		return nil, fmt.Errorf("coursenav: empty end term: a shared counter needs a deadline semester, e.g. \"Fall 2015\"")
	}
	end, err := term.Parse(term.TwoSeason, q.End)
	if err != nil {
		return nil, fmt.Errorf("coursenav: end (deadline) term: %v", err)
	}
	opt, err := n.compileOptions(q)
	if err != nil {
		return nil, err
	}
	inner, err := explore.NewSharedCounter(n.cat, end, horizon, g.inner, n.pruners(q, g), opt, maxStatuses)
	if err != nil {
		return nil, err
	}
	return &SharedCounter{nav: n, inner: inner}, nil
}

// Counts answers one member position: completed course IDs plus the
// first semester of the remaining plan. GoalPaths[h] is the goal-path
// total under deadline end+h; Paths the maximal-path total under the
// farthest deadline.
func (c *SharedCounter) Counts(ctx context.Context, completed []string, start string) (SharedCounts, error) {
	st, err := term.Parse(term.TwoSeason, start)
	if err != nil {
		return SharedCounts{}, fmt.Errorf("coursenav: start term: %v", err)
	}
	x, err := c.nav.cat.SetOf(completed...)
	if err != nil {
		return SharedCounts{}, err
	}
	return c.inner.Counts(ctx, status.New(c.nav.cat, st, x))
}

// Stats snapshots the counter's lifetime tallies.
func (c *SharedCounter) Stats() SharedCounterStats { return c.inner.Stats() }

// Rankings names the ranking functions TopK accepts.
func Rankings() []string { return []string{"time", "workload", "reliability"} }

// TopK returns the k best goal paths under the named ranking function
// ("time", "workload", "reliability"), best first (§4.3). Reliability
// requires UseSyntheticHistory (or a released schedule covering the whole
// window). Fewer than k paths are returned when fewer exist.
func (n *Navigator) TopK(q Query, g Goal, ranking string, k int) ([]Path, Summary, error) {
	return n.TopKCtx(context.Background(), q, g, ranking, k)
}

// TopKCtx is TopK under a context: a cancelled or over-budget search
// returns the best paths found so far (still rank-ordered and exact, by
// best-first emission order) with Summary.Stopped naming the cause.
func (n *Navigator) TopKCtx(ctx context.Context, q Query, g Goal, ranking string, k int) ([]Path, Summary, error) {
	ranker, err := rank.ByName(ranking, n.cat.Workloads(), n.probFn())
	if err != nil {
		return nil, Summary{}, err
	}
	return n.topK(ctx, q, g, ranker, k)
}

func (n *Navigator) topK(ctx context.Context, q Query, g Goal, ranker rank.Ranker, k int) ([]Path, Summary, error) {
	start, end, opt, err := n.compile(q)
	if err != nil {
		return nil, Summary{}, err
	}
	if opt.Substrate == explore.SubstrateDAG {
		return nil, Summary{}, fmt.Errorf("coursenav: top-k search runs best-first over the tree; substrate \"dag\" does not apply")
	}
	res, err := explore.RankedCtx(ctx, n.cat, start, end, g.inner, ranker, k, n.pruners(q, g), opt)
	sum := Summary{
		Nodes: res.Nodes, Edges: res.Edges,
		PrunedTime: res.PrunedTime, PrunedAvail: res.PrunedAvail,
		Paths: int64(len(res.Paths)), GoalPaths: int64(len(res.Paths)),
		Elapsed: res.Elapsed,
		Stopped: res.Stopped, Truncated: res.Truncated,
	}
	if err != nil {
		return nil, sum, err
	}
	out := make([]Path, len(res.Paths))
	for i, rp := range res.Paths {
		out[i] = newPath(n.cat, res.Graph, rp)
	}
	return out, sum, nil
}

// probFn returns the configured reliability estimator, or one that
// reflects the published schedule (probability 1 when offered, 0
// otherwise) so time/workload queries never need configuration.
func (n *Navigator) probFn() rank.OfferingProb {
	if n.prob != nil {
		return n.prob
	}
	return func(ci int, t term.Term) float64 {
		if n.cat.OfferedIn(t).Contains(ci) {
			return 1
		}
		return 0
	}
}

// Weight pairs a ranking-function name with its weight for TopKWeighted.
type Weight struct {
	Ranking string
	Weight  float64
}

// TopKWeighted is TopK under a linear combination of ranking functions
// (the paper's §6 "more complex ranking functions"): cost =
// Σ weightᵢ·costᵢ on each ranking's native scale. Lemma 2's top-k
// guarantee carries over (see rank.Weighted).
func (n *Navigator) TopKWeighted(q Query, g Goal, weights []Weight, k int) ([]Path, Summary, error) {
	return n.TopKWeightedCtx(context.Background(), q, g, weights, k)
}

// TopKWeightedCtx is TopKWeighted under a context (see TopKCtx).
func (n *Navigator) TopKWeightedCtx(ctx context.Context, q Query, g Goal, weights []Weight, k int) ([]Path, Summary, error) {
	if len(weights) == 0 {
		return nil, Summary{}, fmt.Errorf("coursenav: TopKWeighted needs at least one weight")
	}
	comps := make([]rank.Component, len(weights))
	for i, w := range weights {
		r, err := rank.ByName(w.Ranking, n.cat.Workloads(), n.probFn())
		if err != nil {
			return nil, Summary{}, err
		}
		comps[i] = rank.Component{Ranker: r, Weight: w.Weight}
	}
	ranker, err := rank.NewWeighted(comps...)
	if err != nil {
		return nil, Summary{}, err
	}
	return n.topK(ctx, q, g, ranker, k)
}

// FeasibleNow returns the student's current option set Y: courses offered
// in the start semester whose prerequisites the completed set satisfies.
func (n *Navigator) FeasibleNow(completed []string, startTerm string) ([]string, error) {
	start, err := term.Parse(term.TwoSeason, startTerm)
	if err != nil {
		return nil, err
	}
	x, err := n.cat.SetOf(completed...)
	if err != nil {
		return nil, err
	}
	return n.cat.IDs(n.cat.Options(x, start)), nil
}

// PlanResult reports one plan's validation (see ValidatePlans).
type PlanResult struct {
	// Student is the plan's label from the file.
	Student string `json:"student"`
	// Courses counts the plan's elected courses.
	Courses int `json:"courses"`
	// GoalMet reports whether the validated plan's completions satisfy
	// the goal passed to ValidatePlans (false when no goal was given).
	GoalMet bool `json:"goalMet"`
	// Err is empty for valid plans, otherwise the first rule violation
	// (course not offered that semester, prerequisite unmet, over the
	// per-semester limit, semester gap, …).
	Err string `json:"error,omitempty"`
}

// ValidatePlans checks hand-written course plans against the catalog's
// rules — exactly the per-transition constraints Algorithm 1 enforces —
// and, when goal is non-zero, whether each plan reaches it. Plans use the
// transcript text format:
//
//	student: my-plan
//	Fall 2013: COSI 11A, COSI 29A
//	Spring 2014: COSI 21A
func (n *Navigator) ValidatePlans(r io.Reader, maxPerTerm int, goal Goal) ([]PlanResult, error) {
	trs, err := transcript.Parse(r, term.TwoSeason)
	if err != nil {
		return nil, err
	}
	out := make([]PlanResult, 0, len(trs))
	for _, tr := range trs {
		res := PlanResult{Student: tr.Student, Courses: len(tr.Courses())}
		x, err := transcript.Replay(n.cat, tr, maxPerTerm)
		if err != nil {
			res.Err = err.Error()
		} else if goal.inner != nil {
			res.GoalMet = goal.inner.Satisfied(x)
		}
		out = append(out, res)
	}
	return out, nil
}

// SelectionImpact scores one candidate selection for the student's
// current semester (see CompareSelections).
type SelectionImpact struct {
	// Courses is the candidate selection.
	Courses []string `json:"courses"`
	// GoalPaths counts goal-reaching paths that remain after electing it.
	GoalPaths int64 `json:"goalPaths"`
	// Paths counts all remaining generated paths.
	Paths int64 `json:"paths"`
	// NextOptions is the option-set size one semester later.
	NextOptions int `json:"nextOptions"`
}

// CompareSelections answers the paper's motivating what-if question
// (§1): for every selection the student could make in the Start
// semester, how many paths to the goal remain? Results are sorted best
// first (most goal paths, then most next-semester options, then the
// smaller selection).
func (n *Navigator) CompareSelections(q Query, g Goal) ([]SelectionImpact, error) {
	out, _, err := n.CompareSelectionsCtx(context.Background(), q, g)
	return out, err
}

// CompareSelectionsCtx is CompareSelections under a context. On
// cancellation or budget exhaustion it returns the candidates fully
// scored before the stop together with the stop reason ("canceled",
// "deadline", …); the reason is empty for a complete comparison.
func (n *Navigator) CompareSelectionsCtx(ctx context.Context, q Query, g Goal) ([]SelectionImpact, string, error) {
	start, end, opt, err := n.compile(q)
	if err != nil {
		return nil, "", err
	}
	impacts, stopped, err := explore.CompareSelectionsCtx(ctx, n.cat, start, end, g.inner, n.pruners(q, g), opt)
	if err != nil {
		return nil, stopped, err
	}
	out := make([]SelectionImpact, len(impacts))
	for i, imp := range impacts {
		out[i] = SelectionImpact{
			Courses:     n.cat.IDs(imp.Selection),
			GoalPaths:   imp.GoalPaths,
			Paths:       imp.Paths,
			NextOptions: imp.NextOptions,
		}
	}
	return out, stopped, nil
}

// Quickstart: explore learning paths to a CS major over the embedded
// evaluation catalog — the fastest end-to-end tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The embedded 38-course dataset and its CS-major goal
	// (7 core courses + any 5 electives).
	nav, major := coursenav.Brandeis()
	fmt.Printf("catalog: %d courses; goal: %s\n\n", nav.NumCourses(), major)

	// A brand-new student starting in Fall 2013, taking at most 3 courses
	// per semester, who wants the major by Fall 2015.
	q := coursenav.Query{
		Start:      "Fall 2013",
		End:        "Fall 2015",
		MaxPerTerm: 3,
	}

	// What can they take right now?
	now, err := nav.FeasibleNow(q.Completed, q.Start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("electable in %s: %v\n\n", q.Start, now)

	// How many ways are there to reach the major in time?
	sum, err := nav.GoalPathsCount(q, major)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goal-driven exploration: %d paths generated, %d reach the major\n",
		sum.Paths, sum.GoalPaths)
	fmt.Printf("pruning cut %d subtrees (%d time-based, %d availability) in %v\n\n",
		sum.PrunedTime+sum.PrunedAvail, sum.PrunedTime, sum.PrunedAvail, sum.Elapsed)

	// The three shortest plans, via best-first top-k search.
	paths, _, err := nav.TopK(q, major, "time", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three shortest plans:")
	for i, p := range paths {
		fmt.Printf("%d. (%.0f semesters) %s\n", i+1, p.Value, p)
	}

	// The least-workload plan.
	easy, _, err := nav.TopK(q, major, "workload", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlightest plan (%.0f weekly hours total): %s\n", easy[0].Value, easy[0])
}

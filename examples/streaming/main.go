// Streaming: consume learning paths incrementally as the engine finds
// them — callback, iterator and NDJSON-over-HTTP, the three faces of the
// sink-based exploration core.
//
//	go run ./examples/streaming
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro"
	"repro/internal/server"
)

func main() {
	nav, major := coursenav.Brandeis()
	q := coursenav.Query{Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3}

	// 1. Callback streaming: every completed path is delivered the moment
	// the engine finishes it; no graph is materialised, so memory stays
	// proportional to the search depth even when millions of paths exist.
	// Returning ErrStopStream ends the run cleanly.
	fmt.Println("— callback: the first two goal paths —")
	goalSeen := 0
	sum, err := nav.GoalStream(context.Background(), q, major, func(p coursenav.StreamedPath) error {
		if !p.Goal {
			return nil
		}
		goalSeen++
		fmt.Printf("%d. %s\n", goalSeen, p.Path)
		if goalSeen == 2 {
			return coursenav.ErrStopStream
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine stopped early (stopped=%s) after %d generated paths\n\n", sum.Stopped, sum.Paths)

	// 2. Iterator streaming: the same engine as a Go 1.23 range-over-func
	// sequence. Breaking the loop stops the exploration.
	fmt.Println("— iterator: the single best plan, best-first —")
	for p, err := range nav.TopKPathSeq(context.Background(), q, major, "time", 5) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best (%.0f semesters): %s\n\n", p.Value, p.Path)
		break // the first ranked delivery is already the optimum
	}

	// 3. HTTP streaming: ?stream=1 turns the explore endpoints into
	// NDJSON — one {"path":...} record per line as it is found, then a
	// trailing {"summary":...} record. A real deployment would use
	// server.New(nav) behind http.ListenAndServe; httptest keeps this
	// example self-contained.
	fmt.Println("— HTTP: NDJSON records from /api/v1/explore/goal?stream=1 —")
	ts := httptest.NewServer(server.New(nav))
	defer ts.Close()
	body := `{"query":{"start":"Fall 2013","end":"Fall 2015","maxPerTerm":3},` +
		`"goal":{"courses":["COSI 21A","COSI 31A"]},"budget":{"maxPaths":3}}`
	resp, err := http.Post(ts.URL+"/api/v1/explore/goal?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Printf("Content-Type: %s\n", resp.Header.Get("Content-Type"))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 100 {
			line = line[:100] + "…"
		}
		fmt.Println(line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// What-if: compare this semester's candidate course selections by how
// many future paths to the major each preserves — the paper's
// introduction asks exactly this: "which course selections increase my
// future course options and number of possible paths to a CS major?"
//
// CompareSelections enumerates every selection the student could make
// this semester and counts the goal-driven paths from each resulting
// enrollment status.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	nav, major := coursenav.Brandeis()

	// The student is starting Spring 2014 having taken the two fall intro
	// courses, and wants the major completed when Spring 2016 begins (the
	// end semester's own courses do not count: X at the end node holds
	// only courses finished before it).
	q := coursenav.Query{
		Completed:  []string{"COSI 11A", "COSI 29A"},
		Start:      "Spring 2014",
		End:        "Spring 2016",
		MaxPerTerm: 3,
	}

	options, err := nav.FeasibleNow(q.Completed, q.Start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("electable in %s after %v:\n  %s\n\n", q.Start, q.Completed, strings.Join(options, ", "))

	impacts, err := nav.CompareSelections(q, major)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("paths to the major by %s, per %s selection:\n", q.End, q.Start)
	dead := 0
	for _, imp := range impacts {
		if imp.GoalPaths == 0 {
			dead++
			continue
		}
		fmt.Printf("  %6d paths  %2d next-semester options  {%s}\n",
			imp.GoalPaths, imp.NextOptions, strings.Join(imp.Courses, ", "))
	}
	if dead > 0 {
		fmt.Printf("  … and %d selections that close off the major entirely\n", dead)
	}
	if len(impacts) > 0 && impacts[0].GoalPaths > 0 {
		fmt.Printf("\nbest move: take {%s}\n", strings.Join(impacts[0].Courses, ", "))
	}
}

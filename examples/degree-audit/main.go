// Degree audit: a continuing student checks whether graduation is still
// reachable, sees every surviving plan, and exports the learning graph.
//
// This is the paper's motivating scenario — "given my past selections,
// are there paths that lead to a major in the next 4 semesters?" — run
// for a student who followed an unusual first year.
//
//	go run ./examples/degree-audit
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	nav, major := coursenav.Brandeis()

	// The student's transcript so far: a light first year — one intro
	// programming course, discrete maths, and two electives.
	completed := []string{"COSI 11A", "COSI 29A", "COSI 2A", "COSI 33B"}

	q := coursenav.Query{
		Completed:  completed,
		Start:      "Fall 2014", // entering the second year
		End:        "Fall 2015", // wants the major in 3 more semesters
		MaxPerTerm: 3,
	}

	fmt.Printf("completed: %v\n", completed)
	opts, err := nav.FeasibleNow(completed, q.Start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("electable this semester: %v\n\n", opts)

	g, sum, err := nav.GoalPaths(q, major)
	if err != nil {
		log.Fatal(err)
	}
	if sum.GoalPaths == 0 {
		fmt.Println("the major is NOT reachable by", q.End, "- consider a later deadline:")
		// Re-run one semester later to show the recovery plan.
		q.End = "Spring 2016"
		fmt.Println("(the embedded schedule ends Fall 2015, so project it first)")
		if err := nav.ProjectBeyondRelease("Spring 2016", 4, 1, 0.6); err != nil {
			log.Fatal(err)
		}
		g, sum, err = nav.GoalPaths(q, major)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("plans reaching the major by %s: %d\n\n", q.End, sum.GoalPaths)

	for i, p := range g.Paths(true, 3) {
		fmt.Printf("plan %d: %s\n", i+1, p)
	}

	// Export the full learning graph for the visualizer.
	f, err := os.Create("degree-audit.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteDOT(f); err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("\nwrote degree-audit.dot (%d nodes, %d edges, %d goal nodes)\n",
		st.Nodes, st.Edges, st.GoalNodes)
	fmt.Println("render with: dot -Tsvg degree-audit.dot -o degree-audit.svg")
}

// Registrar import: build a catalog from raw registrar text — free-form
// course descriptions whose prerequisite sentences and "usually offered"
// phrases are extracted by the back-end parsers (paper §3, Figure 2) —
// overlay a final schedule, lint it, and explore it.
//
//	go run ./examples/registrar-import
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// catalogDump is the registrar's course-description dump for a small
// music-technology programme. Prerequisites and schedules live inside
// the prose, exactly as a registrar publishes them.
const catalogDump = `
course: MUS 10A
title: Fundamentals of Music Technology
description: Sound, MIDI, and digital audio workstations. Open to all
  students. Usually offered every semester.
workload: 5

course: MUS 20A
title: Electronic Sound Synthesis
description: Subtractive and FM synthesis. Prerequisite: MUS 10a.
  Usually offered every fall.
workload: 8

course: MUS 21A
title: Audio Programming
description: DSP in code. Prerequisites: MUS 10a and COSI 11a, or
  permission of the instructor. Usually offered every spring.
workload: 10

course: MUS 30A
title: Studio Production
description: Capstone studio work. Prerequisite: MUS 20a or MUS 21a.
  Usually offered every second year.
workload: 12

course: COSI 11A
title: Introduction to Programming
description: First programming course. Usually offered every semester.
workload: 9
`

// finalSchedule is the released class schedule; it overrides the
// phrase-derived offerings for the courses it lists.
const finalSchedule = `
# registrar final schedule
MUS 30A | Fall 2013
MUS 30A | Fall 2015
`

// corruptDump is the same programme with two typical registrar defects:
// MUS 20A's prerequisite sentence is cut off mid-parenthesis and MUS 99X
// has a malformed workload. Strict import fails fast on the first defect;
// lenient import quarantines exactly the bad records and reports why.
const corruptDump = `
course: MUS 10A
title: Fundamentals of Music Technology
description: Sound and MIDI. Usually offered every semester.
workload: 5

course: MUS 20A
title: Electronic Sound Synthesis
description: Synthesis. Prerequisite: suitable placement (see department.
  Usually offered every fall.
workload: 8

course: MUS 99X
title: Broken Record
description: Usually offered every year.
workload: heavy
`

func main() {
	nav, err := coursenav.NewFromRegistrarDump(
		strings.NewReader(catalogDump),
		strings.NewReader(finalSchedule),
		"Fall 2012", "Fall 2015")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("parsed catalog:")
	for _, c := range nav.Courses() {
		fmt.Printf("  %-9s prereq=%-28q offered=%v\n", c.ID, c.Prereq, c.Offered)
	}
	if unreachable, never := nav.Lint(); len(unreachable)+len(never) > 0 {
		fmt.Printf("lint: unreachable=%v never-offered=%v\n", unreachable, never)
	}

	// Goal: the studio capstone plus audio programming.
	goal, err := nav.GoalExpr("MUS 30A and MUS 21A")
	if err != nil {
		log.Fatal(err)
	}
	q := coursenav.Query{
		Start:      "Fall 2012",
		End:        "Fall 2015",
		MaxPerTerm: 2,
	}
	g, sum, err := nav.GoalPaths(q, goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npaths to %q by %s: %d\n\n", goal, q.End, sum.GoalPaths)
	for i, p := range g.Paths(true, 4) {
		fmt.Printf("%d. %s\n", i+1, p)
	}

	// Strict vs lenient on a corrupted dump. Strict mode (above) fails
	// fast on the first malformed record; lenient mode imports what it
	// can, quarantines the rest and explains each drop.
	fmt.Println("\n--- corrupted dump ---")
	if _, err := coursenav.NewFromRegistrarDump(
		strings.NewReader(corruptDump), nil, "Fall 2012", "Fall 2015"); err != nil {
		fmt.Printf("strict import: %v\n", err)
	}
	lenient, rep, err := coursenav.NewFromRegistrarDumpLenient(
		strings.NewReader(corruptDump), nil, "Fall 2012", "Fall 2015")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lenient import: %d courses, %d quarantined %v\n",
		lenient.NumCourses(), len(rep.Quarantined), rep.Quarantined)
	for _, d := range rep.Diagnostics {
		fmt.Printf("  %s\n", d)
	}
	fmt.Printf("integrity: %s\n", rep.Integrity.Summary())
}

// Popular paths: mine a transcript corpus Learn2learn-style (the paper's
// related-work system [7]) and contrast the handful of paths students
// actually follow with the full space CourseNavigator enumerates — the
// §5.2 observation that "there are a huge number of paths that are never
// considered by the students".
//
// The corpus is synthesised (real transcripts are not public; see
// DESIGN.md §4) with the same generator the §5.2 experiment uses, so this
// example doubles as a walkthrough of the transcript and mining
// substrates under the public exploration API.
//
//	go run ./examples/popular-paths
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/brandeis"
	"repro/internal/mining"
	"repro/internal/transcript"
)

func main() {
	nav, major := coursenav.Brandeis()
	cat := brandeis.Catalog()
	majorReq, err := brandeis.Major(cat)
	if err != nil {
		log.Fatal(err)
	}

	// 200 students, Fall 2013 → Fall 2015 (the 4-semester Table 2 window).
	start, end := brandeis.StartForSemesters(4), brandeis.EndTerm()
	trs, err := transcript.Generate(cat, majorReq, start, end, brandeis.MaxPerTerm, 200, 99)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := mining.NewCorpus(cat, trs, true, brandeis.MaxPerTerm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d goal-reaching transcripts, %s → %s\n\n", corpus.Size(), start, end)

	fmt.Println("most-taken courses:")
	for i, cc := range corpus.Popularity() {
		if i >= 8 {
			break
		}
		fmt.Printf("  %3d students  %s\n", cc.Count, cc.Course)
	}

	fmt.Println("\nmost common same-semester pairings:")
	for i, pc := range corpus.CoEnrollment(2) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %3d students  %s + %s\n", pc.Count, pc.A, pc.B)
	}

	loads := corpus.LoadProfile()
	fmt.Println("\naverage course load by semester:")
	for i, l := range loads {
		fmt.Printf("  semester %d: %.2f courses\n", i+1, l)
	}

	fmt.Println("\nwell-trodden path prefixes (≥10 students):")
	for i, p := range corpus.PopularPrefixes(10) {
		if i >= 6 {
			break
		}
		fmt.Printf("  %s\n", p)
	}

	// The contrast: how many paths exist vs how many the corpus explores.
	sum, err := nav.GoalPathsCount(coursenav.Query{
		Start: start.Label(), End: end.Label(), MaxPerTerm: brandeis.MaxPerTerm,
	}, major)
	if err != nil {
		log.Fatal(err)
	}
	distinct := len(corpus.PopularPaths(1))
	fmt.Printf("\n%d distinct paths across %d students — CourseNavigator enumerates %d paths to the major for the same period (%.1f%% explored)\n",
		distinct, corpus.Size(), sum.GoalPaths,
		100*float64(distinct)/float64(sum.GoalPaths))
}

package coursenav_test

import (
	"context"
	"fmt"
	"strings"

	"repro"
)

// The examples below run against the embedded evaluation dataset and are
// verified by `go test`; their outputs double as the paper's worked
// numbers for the 4-semester window.

func ExampleNavigator_FeasibleNow() {
	nav, _ := coursenav.Brandeis()
	options, _ := nav.FeasibleNow([]string{"COSI 11A"}, "Spring 2014")
	fmt.Println(strings.Join(options, ", "))
	// Output: COSI 2A, COSI 12B, COSI 21A, COSI 33B
}

func ExampleNavigator_GoalPathsCount() {
	nav, major := coursenav.Brandeis()
	sum, _ := nav.GoalPathsCount(coursenav.Query{
		Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3,
	}, major)
	fmt.Printf("%d generated paths, %d reach the CS major\n", sum.Paths, sum.GoalPaths)
	// Output: 1679 generated paths, 117 reach the CS major
}

func ExampleNavigator_TopK() {
	nav, major := coursenav.Brandeis()
	paths, _, _ := nav.TopK(coursenav.Query{
		Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3,
	}, major, "time", 1)
	fmt.Printf("shortest plan takes %.0f semesters:\n%s\n", paths[0].Value, paths[0])
	// Output:
	// shortest plan takes 4 semesters:
	// Fall 2013: {COSI 2A, COSI 11A, COSI 29A} → Spring 2014: {COSI 12B, COSI 21A, COSI 33B} → Fall 2014: {COSI 30A, COSI 65A, COSI 120A} → Spring 2015: {COSI 21B, COSI 31A, COSI 119A}
}

func ExampleNavigator_Audit() {
	nav, major := coursenav.Brandeis()
	rep, _ := nav.Audit([]string{"COSI 11A", "COSI 29A", "COSI 2A"}, major, "", "", 3)
	for _, g := range rep.Groups {
		fmt.Printf("%s: %d/%d\n", g.Name, g.Filled, g.Needed)
	}
	fmt.Printf("%d slots remaining\n", rep.RemainingSlots)
	// Output:
	// core: 2/7
	// elective: 1/5
	// 9 slots remaining
}

func ExampleNavigator_CompareSelections() {
	nav, major := coursenav.Brandeis()
	impacts, _ := nav.CompareSelections(coursenav.Query{
		Completed:  []string{"COSI 11A", "COSI 29A"},
		Start:      "Spring 2014",
		End:        "Spring 2016",
		MaxPerTerm: 3,
	}, major)
	best := impacts[0]
	fmt.Printf("best move: {%s} keeps %d paths to the major\n",
		strings.Join(best.Courses, ", "), best.GoalPaths)
	// Output: best move: {COSI 12B, COSI 21A, COSI 33B} keeps 35539 paths to the major
}

func ExampleNavigator_ValidatePlans() {
	nav, major := coursenav.Brandeis()
	plan := `student: ambitious
Fall 2013: COSI 11A, COSI 29A, COSI 2A
Spring 2014: COSI 12B, COSI 21A, COSI 33B
Fall 2014: COSI 30A, COSI 127B, COSI 25A
Spring 2015: COSI 21B, COSI 31A, COSI 119A
`
	results, _ := nav.ValidatePlans(strings.NewReader(plan), 3, major)
	r := results[0]
	fmt.Printf("%s: valid=%v reaches major=%v\n", r.Student, r.Err == "", r.GoalMet)
	// Output: ambitious: valid=true reaches major=true
}

func ExampleNavigator_GoalStream() {
	nav, major := coursenav.Brandeis()
	// Stream paths as the engine completes them — no graph is built, so
	// memory stays proportional to the search depth. ErrStopStream ends
	// the run cleanly after the first goal path.
	sum, _ := nav.GoalStream(context.Background(), coursenav.Query{
		Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3,
	}, major, func(p coursenav.StreamedPath) error {
		if !p.Goal {
			return nil
		}
		fmt.Println(p.Path)
		return coursenav.ErrStopStream
	})
	fmt.Printf("stopped=%s after %d paths\n", sum.Stopped, sum.Paths)
	// Output:
	// Fall 2013: {COSI 2A, COSI 11A, COSI 29A} → Spring 2014: {COSI 12B, COSI 21A, COSI 33B} → Fall 2014: {COSI 30A, COSI 107A, COSI 127B} → Spring 2015: {COSI 21B, COSI 31A, COSI 105A}
	// stopped=sink after 37 paths
}

func ExampleNavigator_GoalPathSeq() {
	nav, major := coursenav.Brandeis()
	// The range-over-func form of GoalStream: breaking the loop stops the
	// exploration.
	goalPaths := 0
	for p, err := range nav.GoalPathSeq(context.Background(), coursenav.Query{
		Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3,
	}, major) {
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if p.Goal {
			goalPaths++
			if goalPaths == 3 {
				break
			}
		}
	}
	fmt.Printf("saw %d goal paths, then stopped the engine\n", goalPaths)
	// Output: saw 3 goal paths, then stopped the engine
}

func ExampleNavigator_TopKPathSeq() {
	nav, major := coursenav.Brandeis()
	// Ranked streaming delivers best-first: the first yielded path is the
	// single best plan, available long before the search completes.
	for p, err := range nav.TopKPathSeq(context.Background(), coursenav.Query{
		Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3,
	}, major, "time", 5) {
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("best plan takes %.0f semesters\n", p.Value)
		break
	}
	// Output: best plan takes 4 semesters
}

func ExampleNavigator_GoalExpr() {
	nav, _ := coursenav.Brandeis()
	goal, _ := nav.GoalExpr("COSI 127B or COSI 101A")
	sum, _ := nav.GoalPathsCount(coursenav.Query{
		Start: "Fall 2013", End: "Spring 2015", MaxPerTerm: 2,
	}, goal)
	fmt.Printf("paths to a data-systems course: %d\n", sum.GoalPaths)
	// Output: paths to a data-systems course: 96
}

package coursenav

import (
	"bytes"
	"strings"
	"testing"
)

func TestBrandeisBasics(t *testing.T) {
	nav, major := Brandeis()
	if nav.NumCourses() != 38 {
		t.Fatalf("NumCourses = %d", nav.NumCourses())
	}
	if !strings.Contains(major.String(), "core") {
		t.Errorf("major = %q", major)
	}
	unreachable, neverOffered := nav.Lint()
	if len(unreachable) != 0 || len(neverOffered) != 0 {
		t.Errorf("lint: %v %v", unreachable, neverOffered)
	}
	c, ok := nav.Course("COSI 21A")
	if !ok || c.Prereq != "COSI 11A" || c.Title == "" {
		t.Errorf("Course = %+v ok=%v", c, ok)
	}
	if _, ok := nav.Course("NOPE 1"); ok {
		t.Error("unknown course found")
	}
	if len(nav.Courses()) != 38 {
		t.Error("Courses length")
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	nav, _ := Brandeis()
	var buf bytes.Buffer
	if err := nav.WriteCatalogJSON(&buf); err != nil {
		t.Fatal(err)
	}
	nav2, err := NewFromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nav2.NumCourses() != 38 {
		t.Errorf("round-trip NumCourses = %d", nav2.NumCourses())
	}
	if _, err := NewFromJSON(strings.NewReader("junk")); err == nil {
		t.Error("junk JSON accepted")
	}
}

func TestNewFromRegistrarDump(t *testing.T) {
	dump := `
course: COSI 11A
title: Programming
description: Intro. Usually offered every fall.
workload: 9

course: COSI 21A
title: Data Structures
description: Trees. Prerequisite: COSI 11a. Usually offered every spring.
workload: 12
`
	schedule := "COSI 21A | Spring 2013\n"
	nav, err := NewFromRegistrarDump(strings.NewReader(dump), strings.NewReader(schedule), "Fall 2012", "Fall 2014")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := nav.Course("COSI 21A")
	if len(c.Offered) != 1 || c.Offered[0] != "Spring 2013" {
		t.Errorf("schedule records not authoritative: %v", c.Offered)
	}
	// Without a schedule file, the phrase expansion applies.
	nav2, err := NewFromRegistrarDump(strings.NewReader(dump), nil, "Fall 2012", "Fall 2014")
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := nav2.Course("COSI 21A")
	if len(c2.Offered) != 2 { // springs '13 and '14
		t.Errorf("phrase offerings = %v", c2.Offered)
	}
	// Error paths.
	if _, err := NewFromRegistrarDump(strings.NewReader(dump), nil, "Winter 2012", "Fall 2014"); err == nil {
		t.Error("bad first term accepted")
	}
	if _, err := NewFromRegistrarDump(strings.NewReader(dump), nil, "Fall 2012", "nope"); err == nil {
		t.Error("bad last term accepted")
	}
	if _, err := NewFromRegistrarDump(strings.NewReader("garbage: x"), nil, "Fall 2012", "Fall 2014"); err == nil {
		t.Error("garbage dump accepted")
	}
	if _, err := NewFromRegistrarDump(strings.NewReader(dump), strings.NewReader("NOPE|Fall 2013"), "Fall 2012", "Fall 2014"); err == nil {
		t.Error("bad schedule accepted")
	}
}

func TestGoalConstructors(t *testing.T) {
	nav, _ := Brandeis()
	if _, err := nav.GoalCourses("COSI 11A", "COSI 21A"); err != nil {
		t.Errorf("GoalCourses: %v", err)
	}
	if _, err := nav.GoalCourses("NOPE"); err == nil {
		t.Error("unknown course accepted")
	}
	if _, err := nav.GoalExpr("COSI 11A and COSI 12B"); err != nil {
		t.Errorf("GoalExpr: %v", err)
	}
	if _, err := nav.GoalExpr("((("); err == nil {
		t.Error("bad expr accepted")
	}
	if _, err := nav.GoalDegree(DegreeGroup{Name: "g", Count: 1, Courses: []string{"COSI 11A"}}); err != nil {
		t.Errorf("GoalDegree: %v", err)
	}
	if _, err := nav.GoalDegree(); err == nil {
		t.Error("empty degree accepted")
	}
	if (Goal{}).String() != "none" {
		t.Error("zero Goal String")
	}
}

func TestDeadlineEndToEnd(t *testing.T) {
	nav, _ := Brandeis()
	q := Query{Start: "Spring 2014", End: "Fall 2015", MaxPerTerm: 2}
	g, sum, err := nav.Deadline(q)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Paths == 0 || sum.Nodes == 0 {
		t.Errorf("summary = %+v", sum)
	}
	st := g.Stats()
	if int64(st.Nodes) != sum.Nodes || st.Paths != sum.Paths {
		t.Errorf("graph stats %+v disagree with summary %+v", st, sum)
	}
	// Counting mode agrees.
	sum2, err := nav.DeadlineCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Paths != sum.Paths {
		t.Errorf("count %d != materialise %d", sum2.Paths, sum.Paths)
	}
	// Renderers produce output.
	var dot, tree, js bytes.Buffer
	if err := g.WriteDOT(&dot); err != nil || !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT rendering failed")
	}
	if err := g.WriteTree(&tree, 2); err != nil || tree.Len() == 0 {
		t.Error("tree rendering failed")
	}
	if err := g.WriteJSON(&js, 10); err != nil || !strings.Contains(js.String(), "\"nodes\"") {
		t.Error("JSON rendering failed")
	}
}

func TestQueryErrors(t *testing.T) {
	nav, major := Brandeis()
	bad := []Query{
		{Start: "nope", End: "Fall 2015"},
		{Start: "Fall 2013", End: "nope"},
		{Start: "Fall 2013", End: "Fall 2015", Completed: []string{"NOPE"}},
		{Start: "Fall 2015", End: "Fall 2013"},
	}
	for i, q := range bad {
		if _, _, err := nav.Deadline(q); err == nil {
			t.Errorf("bad query %d accepted by Deadline", i)
		}
		if _, err := nav.GoalPathsCount(q, major); err == nil {
			t.Errorf("bad query %d accepted by GoalPathsCount", i)
		}
	}
}

func TestGoalPathsWithCompletedCourses(t *testing.T) {
	nav, _ := Brandeis()
	// A student two semesters in, aiming to finish the core.
	goal, err := nav.GoalCourses("COSI 11A", "COSI 29A", "COSI 12B", "COSI 21A", "COSI 21B", "COSI 30A", "COSI 31A")
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Completed:  []string{"COSI 11A", "COSI 29A", "COSI 2A"},
		Start:      "Spring 2014",
		End:        "Fall 2015",
		MaxPerTerm: 3,
	}
	g, sum, err := nav.GoalPaths(q, goal)
	if err != nil {
		t.Fatal(err)
	}
	if sum.GoalPaths == 0 {
		t.Fatal("no goal paths for a feasible core-completion query")
	}
	paths := g.Paths(true, 5)
	if len(paths) == 0 || len(paths) > 5 {
		t.Fatalf("Paths(limit 5) = %d", len(paths))
	}
	// Every reported path elects only core courses the student lacks.
	for _, p := range paths {
		if len(p.Semesters) == 0 {
			t.Error("empty path")
		}
		if !strings.Contains(p.String(), "{") {
			t.Errorf("String = %q", p.String())
		}
	}
	// Pruning accounting flows through.
	qNoPrune := q
	qNoPrune.NoPruning = true
	_, sum2, err := nav.GoalPaths(qNoPrune, goal)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.PrunedTime != 0 || sum2.PrunedAvail != 0 {
		t.Error("NoPruning still pruned")
	}
	if sum2.GoalPaths != sum.GoalPaths {
		t.Errorf("pruning changed goal paths: %d vs %d (Lemma 1 violation)", sum.GoalPaths, sum2.GoalPaths)
	}
	if sum2.Nodes <= sum.Nodes {
		t.Error("pruning did not reduce generated nodes")
	}
}

func TestTopKAllRankings(t *testing.T) {
	nav, major := Brandeis()
	if err := nav.UseSyntheticHistory(4, 1); err != nil {
		t.Fatal(err)
	}
	q := Query{Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3}
	for _, ranking := range Rankings() {
		paths, sum, err := nav.TopK(q, major, ranking, 5)
		if err != nil {
			t.Fatalf("%s: %v", ranking, err)
		}
		if len(paths) != 5 {
			t.Fatalf("%s: got %d paths", ranking, len(paths))
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].Cost < paths[i-1].Cost {
				t.Errorf("%s: costs out of order", ranking)
			}
		}
		if sum.Nodes == 0 {
			t.Errorf("%s: no search effort recorded", ranking)
		}
		// Time ranking: the 4-semester window admits only 4-semester paths.
		if ranking == "time" && paths[0].Value != 4 {
			t.Errorf("time best = %g semesters, want 4", paths[0].Value)
		}
	}
	if _, _, err := nav.TopK(q, major, "magic", 5); err == nil {
		t.Error("unknown ranking accepted")
	}
	if _, _, err := nav.TopK(q, major, "time", 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestTopKReliabilityWithoutHistory(t *testing.T) {
	// Without UseSyntheticHistory the estimator defaults to the published
	// schedule (probability 1), so reliability still works and all paths
	// get value 1.
	nav, major := Brandeis()
	q := Query{Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3}
	paths, _, err := nav.TopK(q, major, "reliability", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if p.Value != 1 {
			t.Errorf("published-schedule reliability = %g, want 1", p.Value)
		}
	}
}

func TestFeasibleNow(t *testing.T) {
	nav, _ := Brandeis()
	opts, err := nav.FeasibleNow(nil, "Fall 2013")
	if err != nil {
		t.Fatal(err)
	}
	want := "COSI 11A,COSI 29A,COSI 2A"
	got := strings.Join(opts, ",")
	if got != "COSI 2A,COSI 11A,COSI 29A" {
		t.Errorf("FeasibleNow = %q (want the three intro courses, got ordering by catalog index); reference %q", got, want)
	}
	opts2, err := nav.FeasibleNow([]string{"COSI 11A"}, "Spring 2014")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(opts2, ",")
	for _, c := range []string{"COSI 12B", "COSI 21A"} {
		if !strings.Contains(joined, c) {
			t.Errorf("FeasibleNow after 11A missing %s: %v", c, opts2)
		}
	}
	if _, err := nav.FeasibleNow(nil, "nope"); err != nil {
		// expected
	} else {
		t.Error("bad term accepted")
	}
	if _, err := nav.FeasibleNow([]string{"NOPE"}, "Fall 2013"); err == nil {
		t.Error("unknown completed course accepted")
	}
}

func TestRankingsList(t *testing.T) {
	r := Rankings()
	if len(r) != 3 || r[0] != "time" {
		t.Errorf("Rankings = %v", r)
	}
}

func TestProjectBeyondRelease(t *testing.T) {
	nav, major := Brandeis()
	// Extend the schedule two semesters past Fall 2015.
	if err := nav.ProjectBeyondRelease("Fall 2016", 4, 1, 0.6); err != nil {
		t.Fatal(err)
	}
	// Exploration may now cross the old release boundary.
	q := Query{Start: "Spring 2014", End: "Fall 2016", MaxPerTerm: 3}
	paths, _, err := nav.TopK(q, major, "reliability", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths in the projected window")
	}
	// The most reliable path must rank first and no value may exceed 1.
	for i, p := range paths {
		if p.Value <= 0 || p.Value > 1 {
			t.Errorf("path %d reliability = %g", i, p.Value)
		}
		if i > 0 && paths[i].Value > paths[i-1].Value+1e-12 {
			t.Errorf("reliability not non-increasing at %d", i)
		}
	}
	// Paths that elect projected (uncertain) offerings must be
	// distinguishable: starting late forces projected semesters, so some
	// path in a wide-enough k has value < 1.
	q2 := Query{Start: "Spring 2016", End: "Fall 2016", MaxPerTerm: 3}
	intro, err := nav.GoalCourses("COSI 12B", "COSI 21A")
	if err != nil {
		t.Fatal(err)
	}
	q2.Completed = []string{"COSI 11A"}
	paths2, _, err := nav.TopK(q2, intro, "reliability", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths2) == 0 {
		t.Fatal("no projected-window paths")
	}
	sawUncertain := false
	for _, p := range paths2 {
		if p.Value < 1 {
			sawUncertain = true
		}
	}
	if !sawUncertain {
		t.Error("projected offerings all carried probability 1; estimator not wired")
	}
	// Validation.
	if err := nav.ProjectBeyondRelease("nope", 4, 1, 0.6); err == nil {
		t.Error("bad horizon accepted")
	}
	if err := nav.ProjectBeyondRelease("Fall 2015", 4, 1, 0.6); err == nil {
		t.Error("horizon inside release accepted")
	}
}

func TestQueryConstraints(t *testing.T) {
	nav, major := Brandeis()
	base := Query{Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3}

	// Avoid: no path elects the avoided course, and the path set shrinks.
	withAvoid := base
	withAvoid.Avoid = []string{"COSI 2A"}
	g, sum, err := nav.GoalPaths(withAvoid, major)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Paths(true, 0) {
		if strings.Contains(p.String(), "COSI 2A") {
			t.Fatalf("avoided course on path %s", p)
		}
	}
	full, err := nav.GoalPathsCount(base, major)
	if err != nil {
		t.Fatal(err)
	}
	if sum.GoalPaths >= full.GoalPaths {
		t.Errorf("avoid did not shrink goal paths: %d vs %d", sum.GoalPaths, full.GoalPaths)
	}
	badAvoid := base
	badAvoid.Avoid = []string{"NOPE"}
	if _, _, err := nav.GoalPaths(badAvoid, major); err == nil {
		t.Error("unknown avoid course accepted")
	}

	// MaxTermWorkload: semesters stay under the ceiling.
	capped := base
	capped.MaxTermWorkload = 25
	g2, _, err := nav.GoalPaths(capped, major)
	if err != nil {
		t.Fatal(err)
	}
	w := map[string]float64{}
	for _, c := range nav.Courses() {
		w[c.ID] = c.Workload
	}
	for _, p := range g2.Paths(true, 10) {
		for _, sel := range p.Semesters {
			var sum float64
			for _, id := range sel.Courses {
				sum += w[id]
			}
			if sum > 25 {
				t.Fatalf("semester %s carries %.1f hours", sel.Term, sum)
			}
		}
	}

	// MinPerTerm: no 1-course semesters on any path.
	floored := base
	floored.MinPerTerm = 2
	g3, _, err := nav.Deadline(Query{Start: "Spring 2015", End: "Fall 2015", MaxPerTerm: 3, MinPerTerm: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = floored
	for _, p := range g3.Paths(false, 0) {
		for _, sel := range p.Semesters {
			if len(sel.Courses) == 1 {
				t.Fatalf("single-course semester on %s", p)
			}
		}
	}
}

func TestTopKWeightedAndThreshold(t *testing.T) {
	nav, major := Brandeis()
	q := Query{Start: "Fall 2013", End: "Fall 2015", MaxPerTerm: 3}
	paths, _, err := nav.TopKWeighted(q, major,
		[]Weight{{Ranking: "time", Weight: 100}, {Ranking: "workload", Weight: 1}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("weighted returned %d paths", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Cost < paths[i-1].Cost {
			t.Error("weighted order broken")
		}
	}
	// Threshold: cap at the best cost; only ties remain.
	capped := q
	capped.MaxPathCost = paths[0].Cost
	paths2, _, err := nav.TopKWeighted(capped, major,
		[]Weight{{Ranking: "time", Weight: 100}, {Ranking: "workload", Weight: 1}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths2) == 0 {
		t.Fatal("threshold erased everything")
	}
	for _, p := range paths2 {
		if p.Cost > paths[0].Cost {
			t.Errorf("cost %g over threshold %g", p.Cost, paths[0].Cost)
		}
	}
	// Validation.
	if _, _, err := nav.TopKWeighted(q, major, nil, 5); err == nil {
		t.Error("empty weights accepted")
	}
	if _, _, err := nav.TopKWeighted(q, major, []Weight{{Ranking: "magic", Weight: 1}}, 5); err == nil {
		t.Error("unknown component accepted")
	}
	if _, _, err := nav.TopKWeighted(q, major, []Weight{{Ranking: "time", Weight: -1}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAuditFacade(t *testing.T) {
	nav, major := Brandeis()
	rep, err := nav.Audit([]string{"COSI 11A", "COSI 29A", "COSI 2A"}, major,
		"Fall 2014", "Fall 2015", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Error("partial transcript reported complete")
	}
	if rep.RemainingSlots != 9 {
		t.Errorf("remaining = %d, want 9", rep.RemainingSlots)
	}
	if rep.Groups[0].Filled != 2 || rep.Groups[1].Filled != 1 {
		t.Errorf("groups = %+v", rep.Groups)
	}
	// 9 slots, 2 course-taking semesters, m=3 → unreachable.
	if rep.Reachable {
		t.Error("9 slots in 2 semesters reported reachable")
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "core: 2/7") {
		t.Errorf("report:\n%s", buf.String())
	}
	// Non-degree goals are rejected.
	expr, _ := nav.GoalExpr("COSI 11A")
	if _, err := nav.Audit(nil, expr, "", "", 3); err == nil {
		t.Error("expression goal accepted by Audit")
	}
	if _, err := nav.Audit([]string{"NOPE"}, major, "", "", 3); err == nil {
		t.Error("unknown completed course accepted")
	}
	if _, err := nav.Audit(nil, major, "nope", "", 3); err == nil {
		t.Error("bad now term accepted")
	}
	if _, err := nav.Audit(nil, major, "Fall 2014", "nope", 3); err == nil {
		t.Error("bad deadline accepted")
	}
}

func TestCompareSelectionsFacade(t *testing.T) {
	nav, major := Brandeis()
	impacts, err := nav.CompareSelections(Query{
		Completed:  []string{"COSI 11A", "COSI 29A"},
		Start:      "Spring 2014",
		End:        "Spring 2016",
		MaxPerTerm: 3,
	}, major)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) == 0 {
		t.Fatal("no impacts")
	}
	// The whatif example's answer: {12B, 21A, 33B} maximises goal paths.
	best := impacts[0]
	if strings.Join(best.Courses, ",") != "COSI 12B,COSI 21A,COSI 33B" {
		t.Errorf("best = %v", best.Courses)
	}
	if best.GoalPaths != 35539 {
		t.Errorf("best GoalPaths = %d, want 35539 (whatif example regression)", best.GoalPaths)
	}
	if _, err := nav.CompareSelections(Query{Start: "x", End: "y"}, major); err == nil {
		t.Error("bad query accepted")
	}
}

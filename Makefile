# Developer entry points. `make check` is the full pre-commit gate:
# vet, build, the whole test suite under the race detector, and a short
# benchmark smoke run (catches benchmarks that no longer compile or
# assert stale path counts without waiting for steady-state timings).

GO ?= go

.PHONY: check vet build test race bench bench-smoke

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run with allocation stats (slow; EXPERIMENTS.md numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One quick iteration of the hot-path benchmarks.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Table1GoalPruning|Classify|Selections|RequirementRemaining' -benchtime 10x ./...

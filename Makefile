# Developer entry points. `make check` is the full pre-commit gate:
# vet, build, the whole test suite under the race detector, and a short
# benchmark smoke run (catches benchmarks that no longer compile or
# assert stale path counts without waiting for steady-state timings).

GO ?= go

.PHONY: check vet lint build test race race-short bench bench-smoke fuzz-short \
	bench-regress bench-baseline routes-guard chaos-short cohort-short

check: lint build routes-guard chaos-short cohort-short race-short race fuzz-short bench-smoke bench-regress

# API.md's endpoint table and the registered mux patterns must stay
# equal in both directions — a new route lands with its documentation
# or not at all.
routes-guard:
	$(GO) test -run 'TestRouteInventoryMatchesDocs' ./internal/server/

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck when installed (CI installs
# it — see .github/workflows/ci.yml; locally it is optional and skipped
# with a note rather than failing the build).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast race gate over the request-lifecycle surface (engine cancellation
# + HTTP layer); the tight -timeout doubles as a hang detector for the
# parallel-drain and semaphore paths.
race-short:
	$(GO) test -race -timeout 90s ./internal/explore/... ./internal/server/...

# The resilience gate: the chaos fault-injection suite (reload-source,
# handler-entry and mid-stream faults), the overload/brownout/breaker
# behaviours and the shutdown-under-load drain, all under the race
# detector. CI uploads the log on failure.
chaos-short:
	$(GO) test -race -timeout 120s ./internal/chaos/ ./internal/admission/
	$(GO) test -race -timeout 120s \
		-run 'Chaos|Queue|Shed|Brownout|Degraded|Breaker|Stale|Healthz|StatsOverload|OverloadMix|ShutdownUnderLoad' \
		./internal/server/

# The batch-simulation gate: the scenario/cohort engine plus the cohort
# endpoint's streaming, cancellation, coalescing and cohort-of-1
# equivalence tests, under the race detector. CI uploads the log on
# failure.
cohort-short:
	$(GO) test -race -timeout 120s ./internal/cohort/
	$(GO) test -race -timeout 120s -run 'Cohort|WhatIf' ./internal/server/

# Bounded fuzz smoke over the ingestion parsers (grammar round-trip,
# prerequisite extraction, lenient/strict differential). go test allows
# one -fuzz target per invocation, hence one line per target. The
# minimize budget is capped in execs: the default (60s per interesting
# input) can stall a 5s smoke run for a minute on a fresh build cache.
fuzz-short:
	$(GO) test -run '^$$' -fuzz 'FuzzParse$$' -fuzztime 5s -fuzzminimizetime 100x ./internal/expr/
	$(GO) test -run '^$$' -fuzz 'FuzzParsePrereq$$' -fuzztime 5s -fuzzminimizetime 100x ./internal/registrar/
	$(GO) test -run '^$$' -fuzz 'FuzzParseCatalogDumpLenient$$' -fuzztime 5s -fuzzminimizetime 100x ./internal/registrar/

# Full benchmark run with allocation stats (slow; EXPERIMENTS.md numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One quick iteration of the hot-path benchmarks.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Table1GoalPruning|Classify|Selections|RequirementRemaining' -benchtime 10x ./...

# Benchmark-regression gate: run the streaming/heap benchmarks and
# compare against the checked-in baseline (BENCH_baseline.json) with
# cmd/benchguard (allocs may grow ≤25%, ns ≤3x). When benchstat is
# installed (CI installs it), a human-readable delta is printed too.
# Keep the -bench pattern and -benchtime in sync with bench-baseline —
# allocs/op amortisation depends on the iteration count.
BENCH_GATE = GoalStream$$|GoalMaterialize$$|FrontierHeapGeneric$$|FrontierHeapBoxed$$|ExploreCold$$|ExploreWarm$$|ExploreCoalesced$$|CohortReplanCold$$|CohortReplanWarm$$|CohortSharedCold$$|CohortSharedWarm$$|DAGCount$$|DAGWhatIf$$|MultiHorizonProbe$$
BENCH_DIR  = .bench
BENCH_RUN  = $(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchmem -benchtime 20x ./internal/explore/ ./internal/server/

bench-regress:
	@mkdir -p $(BENCH_DIR)
	$(BENCH_RUN) | tee $(BENCH_DIR)/current.txt | $(GO) run ./cmd/benchguard -baseline BENCH_baseline.json
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) run ./cmd/benchguard -baseline BENCH_baseline.json -extract > $(BENCH_DIR)/baseline.txt; \
		benchstat $(BENCH_DIR)/baseline.txt $(BENCH_DIR)/current.txt; \
	else \
		echo "bench-regress: benchstat not installed, delta report skipped (gate enforced by benchguard)"; \
	fi

# Rewrite BENCH_baseline.json from a fresh run on this machine.
bench-baseline:
	$(BENCH_RUN) | $(GO) run ./cmd/benchguard -baseline BENCH_baseline.json -update

# Developer entry points. `make check` is the full pre-commit gate:
# vet, build, the whole test suite under the race detector, and a short
# benchmark smoke run (catches benchmarks that no longer compile or
# assert stale path counts without waiting for steady-state timings).

GO ?= go

.PHONY: check vet build test race race-short bench bench-smoke fuzz-short

check: vet build race-short race fuzz-short bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast race gate over the request-lifecycle surface (engine cancellation
# + HTTP layer); the tight -timeout doubles as a hang detector for the
# parallel-drain and semaphore paths.
race-short:
	$(GO) test -race -timeout 90s ./internal/explore/... ./internal/server/...

# Bounded fuzz smoke over the ingestion parsers (grammar round-trip,
# prerequisite extraction, lenient/strict differential). go test allows
# one -fuzz target per invocation, hence one line per target. The
# minimize budget is capped in execs: the default (60s per interesting
# input) can stall a 5s smoke run for a minute on a fresh build cache.
fuzz-short:
	$(GO) test -run '^$$' -fuzz 'FuzzParse$$' -fuzztime 5s -fuzzminimizetime 100x ./internal/expr/
	$(GO) test -run '^$$' -fuzz 'FuzzParsePrereq$$' -fuzztime 5s -fuzzminimizetime 100x ./internal/registrar/
	$(GO) test -run '^$$' -fuzz 'FuzzParseCatalogDumpLenient$$' -fuzztime 5s -fuzzminimizetime 100x ./internal/registrar/

# Full benchmark run with allocation stats (slow; EXPERIMENTS.md numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One quick iteration of the hot-path benchmarks.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Table1GoalPruning|Classify|Selections|RequirementRemaining' -benchtime 10x ./...

package coursenav_test

// Integration: the full CourseNavigator pipeline — registrar prose in,
// exploration service out — crossing every subsystem boundary in one
// scenario: back-end parsing (§3), catalog construction, goal-driven
// exploration with pruning (§4.2), ranked search (§4.3), schedule
// projection and reliability (§4.3.1), degree audit, plan validation,
// transcript synthesis and mining, and a schedule-revision impact check.

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/catalog"
	"repro/internal/degree"
	"repro/internal/impact"
	"repro/internal/mining"
	"repro/internal/term"
	"repro/internal/transcript"
)

// integrationDump is a small music-technology programme published as
// registrar prose: prerequisites and schedules live inside descriptions.
const integrationDump = `
course: MUS 10A
title: Fundamentals of Music Technology
description: Sound and digital audio. Usually offered every semester.
workload: 5

course: MUS 20A
title: Sound Synthesis
description: Synthesis techniques. Prerequisite: MUS 10a.
  Usually offered every fall.
workload: 8

course: MUS 21A
title: Audio Programming
description: DSP in code. Prerequisites: MUS 10a and COSI 11a.
  Usually offered every spring.
workload: 10

course: MUS 30A
title: Studio Production
description: Capstone. Prerequisite: MUS 20a or MUS 21a.
  Usually offered every year.
workload: 12

course: COSI 11A
title: Introduction to Programming
description: First programming course. Usually offered every semester.
workload: 9
`

func TestFullPipeline(t *testing.T) {
	// 1. Back-end: registrar prose → catalog.
	nav, err := coursenav.NewFromRegistrarDump(
		strings.NewReader(integrationDump), nil, "Fall 2012", "Fall 2014")
	if err != nil {
		t.Fatal(err)
	}
	if unreachable, never := nav.Lint(); len(unreachable)+len(never) != 0 {
		t.Fatalf("lint: %v %v", unreachable, never)
	}

	// 2. Goal-driven exploration with pruning: the capstone programme.
	goal, err := nav.GoalCourses("MUS 30A", "MUS 21A")
	if err != nil {
		t.Fatal(err)
	}
	q := coursenav.Query{Start: "Fall 2012", End: "Fall 2014", MaxPerTerm: 2}
	g, sum, err := nav.GoalPaths(q, goal)
	if err != nil {
		t.Fatal(err)
	}
	if sum.GoalPaths == 0 {
		t.Fatal("no goal paths through the parsed catalog")
	}
	// Every reported goal path replays cleanly as a plan.
	for _, p := range g.Paths(true, 0) {
		var plan strings.Builder
		plan.WriteString("student: path\n")
		for _, sel := range p.Semesters {
			plan.WriteString(sel.Term + ": " + strings.Join(sel.Courses, ", ") + "\n")
		}
		results, err := nav.ValidatePlans(strings.NewReader(plan.String()), q.MaxPerTerm, goal)
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != "" || !results[0].GoalMet {
			t.Fatalf("generated path does not validate: %+v\n%s", results[0], plan.String())
		}
	}

	// 3. Ranked search agrees with the cheapest enumerated path.
	paths, _, err := nav.TopK(q, goal, "time", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Value <= 0 {
		t.Fatalf("top-1 = %+v", paths)
	}

	// 4. Projection past the release + reliability ranking.
	if err := nav.ProjectBeyondRelease("Fall 2015", 3, 7, 0.5); err != nil {
		t.Fatal(err)
	}
	qWide := coursenav.Query{Start: "Fall 2014", End: "Fall 2015", MaxPerTerm: 2}
	rel, _, err := nav.TopK(qWide, goal, "reliability", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rel {
		if p.Value <= 0 || p.Value > 1 {
			t.Fatalf("projected reliability = %g", p.Value)
		}
	}

	// 5. Degree audit over a counted requirement.
	req, err := nav.GoalDegree(
		coursenav.DegreeGroup{Name: "mus-core", Count: 2, Courses: []string{"MUS 10A", "MUS 20A", "MUS 21A"}},
		coursenav.DegreeGroup{Name: "capstone", Count: 1, Courses: []string{"MUS 30A"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nav.Audit([]string{"MUS 10A"}, req, "Fall 2013", "Fall 2014", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete || rep.RemainingSlots != 2 {
		t.Fatalf("audit = %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mus-core: 1/2") {
		t.Fatalf("audit report:\n%s", buf.String())
	}

	// 6. Transcript synthesis and mining on the same catalog (internal
	// layers under the public exploration surface).
	cat, err := catalog.FromSpecs(term.TwoSeason, mustSpecs(t, nav))
	if err != nil {
		t.Fatal(err)
	}
	innerGoal, err := degree.NewCourseSet(cat, "MUS 30A", "MUS 21A")
	if err != nil {
		t.Fatal(err)
	}
	f12 := term.TwoSeason.MustTerm(2012, term.Fall)
	f14 := term.TwoSeason.MustTerm(2014, term.Fall)
	trs, err := transcript.Generate(cat, innerGoal, f12, f14, 2, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := mining.NewCorpus(cat, trs, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop := corpus.Popularity()
	if len(pop) == 0 || pop[0].Count != corpus.Size() {
		t.Fatalf("popularity = %+v", pop)
	}

	// 7. Impact of a revision that cancels MUS 21A's springs. The fall
	// chain 10A → 20A → 30A needs three falls, one more than the window
	// has, so the capstone becomes unreachable — one cancelled course
	// collapses the whole path space, the scenario §1 warns about.
	revised := strings.ReplaceAll(integrationDump,
		"DSP in code. Prerequisites: MUS 10a and COSI 11a.\n  Usually offered every spring.",
		"DSP in code. Prerequisites: MUS 10a and COSI 11a.")
	nav2, err := coursenav.NewFromRegistrarDump(strings.NewReader(revised), nil, "Fall 2012", "Fall 2014")
	if err != nil {
		t.Fatal(err)
	}
	newCat, err := catalog.FromSpecs(term.TwoSeason, mustSpecs(t, nav2))
	if err != nil {
		t.Fatal(err)
	}
	irep, err := impact.Compare(cat, newCat, impact.Analysis{
		Start: f12, End: f14, MaxPerTerm: 2,
		Goal: func(c *catalog.Catalog) (degree.Goal, error) {
			return degree.NewCourseSet(c, "MUS 30A")
		},
		Plans: trs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if irep.NewGoalPaths >= irep.OldGoalPaths {
		t.Errorf("revision did not shrink the path space: %d → %d", irep.OldGoalPaths, irep.NewGoalPaths)
	}
	if irep.StillReachable || irep.NewGoalPaths != 0 {
		t.Errorf("cancelling MUS 21A should make MUS 30A unreachable by Fall '14; got %d paths", irep.NewGoalPaths)
	}
	if len(irep.BrokenPlans) == 0 {
		t.Error("no broken plans despite cancelling MUS 21A (all transcripts use it)")
	}
}

// mustSpecs round-trips a Navigator's catalog to specs via its JSON form.
func mustSpecs(t *testing.T, nav *coursenav.Navigator) []catalog.CourseSpec {
	t.Helper()
	var buf bytes.Buffer
	if err := nav.WriteCatalogJSON(&buf); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.ReadJSON(term.TwoSeason, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return cat.Specs()
}

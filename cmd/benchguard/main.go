// Command benchguard gates benchmark regressions against a checked-in
// baseline (BENCH_baseline.json at the repository root).
//
// It reads `go test -bench -benchmem` output on stdin and compares each
// benchmark against the baseline:
//
//   - allocs/op may grow by at most 25% (plus a 2-alloc absolute slack
//     for tiny counts) — allocation counts are deterministic, so this
//     is a tight gate;
//   - ns/op may grow by at most 3× — wall-clock is noisy across
//     machines and -benchtime settings, so the gate only catches
//     order-of-magnitude regressions.
//
// Bytes/op are recorded and reported but not gated (map growth makes
// them mildly machine-dependent).
//
// Modes:
//
//	benchguard -baseline BENCH_baseline.json            # gate (default)
//	benchguard -baseline BENCH_baseline.json -update    # rewrite baseline from stdin
//	benchguard -baseline BENCH_baseline.json -extract   # print baseline raw bench
//	                                                    # lines (benchstat old file)
//
// The baseline stores both parsed metrics and the raw benchmark lines,
// so CI can feed `-extract` output and a fresh run to benchstat for a
// human-readable delta while this command enforces the hard gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the BENCH_baseline.json schema.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// Benchmarks maps the normalised benchmark name (no -GOMAXPROCS
	// suffix) to its recorded metrics.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's recorded metrics.
type Entry struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// Raw is the original benchmark output line, kept so -extract can
	// reconstruct a benchstat-compatible old file.
	Raw string `json:"raw"`
}

// benchLine matches `go test -bench -benchmem` result lines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

func parseBench(line string) (name string, e Entry, ok bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return "", Entry{}, false
	}
	e.Raw = line
	e.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
	rest := m[3]
	if bm := regexp.MustCompile(`(\d+) B/op`).FindStringSubmatch(rest); bm != nil {
		e.BytesPerOp, _ = strconv.ParseInt(bm[1], 10, 64)
	}
	if am := regexp.MustCompile(`(\d+) allocs/op`).FindStringSubmatch(rest); am != nil {
		e.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
	}
	return m[1], e, true
}

func readInput(r *bufio.Scanner) map[string]Entry {
	out := map[string]Entry{}
	for r.Scan() {
		if name, e, ok := parseBench(r.Text()); ok {
			out[name] = e
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file")
	update := flag.Bool("update", false, "rewrite the baseline from stdin instead of gating")
	extract := flag.Bool("extract", false, "print the baseline's raw bench lines (for benchstat)")
	maxNsRatio := flag.Float64("max-ns-ratio", 3.0, "max allowed ns/op growth factor")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 1.25, "max allowed allocs/op growth factor")
	flag.Parse()

	if *extract {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		for _, name := range sortedKeys(base.Benchmarks) {
			fmt.Println(base.Benchmarks[name].Raw)
		}
		return
	}

	current := readInput(bufio.NewScanner(os.Stdin))
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin (pattern mismatch or build failure?)"))
	}

	if *update {
		base := Baseline{
			Note:       "Regenerate with `make bench-baseline` on a quiet machine; gated by cmd/benchguard (allocs +25%, ns 3x).",
			Benchmarks: current,
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	failures := 0
	for _, name := range sortedKeys(base.Benchmarks) {
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			fmt.Printf("benchguard: FAIL %s: present in baseline but missing from this run\n", name)
			failures++
			continue
		}
		// Allocations: deterministic, tight gate with small absolute slack.
		allocCap := int64(float64(want.AllocsPerOp)**maxAllocRatio) + 2
		if got.AllocsPerOp > allocCap {
			fmt.Printf("benchguard: FAIL %s: %d allocs/op exceeds cap %d (baseline %d)\n",
				name, got.AllocsPerOp, allocCap, want.AllocsPerOp)
			failures++
		}
		// Wall clock: loose gate, catches order-of-magnitude regressions.
		if want.NsPerOp > 0 && got.NsPerOp > want.NsPerOp**maxNsRatio {
			fmt.Printf("benchguard: FAIL %s: %.0f ns/op exceeds %.1fx baseline %.0f\n",
				name, got.NsPerOp, *maxNsRatio, want.NsPerOp)
			failures++
		}
		if got.AllocsPerOp <= allocCap && (want.NsPerOp <= 0 || got.NsPerOp <= want.NsPerOp**maxNsRatio) {
			fmt.Printf("benchguard: ok   %s: %.0f ns/op (base %.0f), %d B/op (base %d), %d allocs/op (base %d)\n",
				name, got.NsPerOp, want.NsPerOp, got.BytesPerOp, want.BytesPerOp, got.AllocsPerOp, want.AllocsPerOp)
		}
	}
	for name := range current {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("benchguard: note %s: not in baseline (run `make bench-baseline` to record it)\n", name)
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d benchmark regression(s)", failures))
	}
}

func loadBaseline(path string) (Baseline, error) {
	var base Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("parsing %s: %w", path, err)
	}
	return base, nil
}

func sortedKeys(m map[string]Entry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
		want string // normalised benchmark name
		ns   float64
		b    int64
		a    int64
	}{
		{
			name: "benchmem columns",
			line: "BenchmarkExploreCold      \t      20\t   9052997 ns/op\t 6563890 B/op\t    9143 allocs/op",
			ok:   true, want: "BenchmarkExploreCold", ns: 9052997, b: 6563890, a: 9143,
		},
		{
			name: "gomaxprocs suffix stripped",
			line: "BenchmarkFrontierHeapGeneric-8 \t      20\t    199098 ns/op\t   32768 B/op\t       1 allocs/op",
			ok:   true, want: "BenchmarkFrontierHeapGeneric", ns: 199098, b: 32768, a: 1,
		},
		{
			// ReportMetric columns sit between ns/op and the -benchmem
			// columns; they must neither break parsing nor leak into the
			// bytes/allocs fields.
			name: "custom metric column",
			line: "BenchmarkGoalStream \t      20\t    364427 ns/op\t      1679 paths/op\t   46856 B/op\t    5443 allocs/op",
			ok:   true, want: "BenchmarkGoalStream", ns: 364427, b: 46856, a: 5443,
		},
		{
			name: "custom metric without benchmem",
			line: "BenchmarkDAGCount-4 \t     100\t   2540907 ns/op\t    117030 paths/op",
			ok:   true, want: "BenchmarkDAGCount", ns: 2540907, b: 0, a: 0,
		},
		{
			name: "sub-benchmark path with key=value segments",
			line: "BenchmarkCountTreeVsDAG/semesters=6/substrate=dag-8 \t       1\t2117034920 ns/op\t 251391624 B/op\t     695 allocs/op",
			ok:   true, want: "BenchmarkCountTreeVsDAG/semesters=6/substrate=dag", ns: 2117034920, b: 251391624, a: 695,
		},
		{
			name: "fractional ns/op",
			line: "BenchmarkBitsetHas \t1000000000\t         0.25 ns/op",
			ok:   true, want: "BenchmarkBitsetHas", ns: 0.25,
		},
		{name: "pass line", line: "PASS"},
		{name: "ok line", line: "ok  \trepro/internal/explore\t0.069s"},
		{name: "goos header", line: "goos: linux"},
		{name: "empty", line: ""},
		{name: "benchmark definition, no results", line: "BenchmarkGoalStream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			name, e, ok := parseBench(tc.line)
			if ok != tc.ok {
				t.Fatalf("parseBench(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			}
			if !ok {
				return
			}
			if name != tc.want {
				t.Errorf("name = %q, want %q", name, tc.want)
			}
			if e.NsPerOp != tc.ns {
				t.Errorf("NsPerOp = %v, want %v", e.NsPerOp, tc.ns)
			}
			if e.BytesPerOp != tc.b {
				t.Errorf("BytesPerOp = %d, want %d", e.BytesPerOp, tc.b)
			}
			if e.AllocsPerOp != tc.a {
				t.Errorf("AllocsPerOp = %d, want %d", e.AllocsPerOp, tc.a)
			}
			if e.Raw != tc.line {
				t.Errorf("Raw = %q, want the input line", e.Raw)
			}
		})
	}
}

func TestReadInput(t *testing.T) {
	blob := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: repro/internal/explore",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkDAGCount-8  \t      20\t   2540907 ns/op\t    117030 paths/op\t 1306264 B/op\t      42 allocs/op",
		"BenchmarkDAGWhatIf-8 \t      20\t    362941 ns/op\t 1145305 B/op\t      72 allocs/op",
		"PASS",
		"ok  \trepro/internal/explore\t0.069s",
	}, "\n")
	got := readInput(bufio.NewScanner(strings.NewReader(blob)))
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	count, ok := got["BenchmarkDAGCount"]
	if !ok {
		t.Fatal("BenchmarkDAGCount missing (GOMAXPROCS suffix not stripped?)")
	}
	if count.AllocsPerOp != 42 || count.BytesPerOp != 1306264 {
		t.Errorf("BenchmarkDAGCount = %+v, custom paths/op column corrupted the benchmem fields", count)
	}
	if whatIf := got["BenchmarkDAGWhatIf"]; whatIf.NsPerOp != 362941 {
		t.Errorf("BenchmarkDAGWhatIf NsPerOp = %v, want 362941", whatIf.NsPerOp)
	}
}

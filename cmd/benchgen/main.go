// Command benchgen regenerates every table and figure of the paper's
// evaluation (§5) and prints them in the paper's row format; with -json
// it additionally writes machine-readable results.
//
// Usage:
//
//	benchgen [-exp all|table1|table2|figure4|transcripts|figures|ablations]
//	         [-full]
//	         [-transcripts 83] [-seed 2016] [-json results.json]
//
// -full counts the explosive goal-driven rows (6-7 semesters) by full
// tree enumeration exactly like the paper (minutes of runtime); by
// default those rows use status-interned counting, which produces
// identical path counts in seconds but whose runtime column is marked
// with * as not comparable. EXPERIMENTS.md records paper-vs-measured
// values from this tool's output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

type results struct {
	Table1      []experiments.Table1Row       `json:"table1,omitempty"`
	Table2      []experiments.Table2Row       `json:"table2,omitempty"`
	Figure4     []experiments.Figure4Point    `json:"figure4,omitempty"`
	Transcripts *experiments.TranscriptResult `json:"transcripts,omitempty"`
	Ablations   []experiments.AblationRow     `json:"ablations,omitempty"`
	Scaling     []experiments.ScalingPoint    `json:"scaling,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, figure4, transcripts, figures, ablations, scaling")
	full := flag.Bool("full", false, "full tree enumeration for the explosive Table 2 rows (paper-style, minutes)")
	nTranscripts := flag.Int("transcripts", 83, "number of synthesised transcripts for the §5.2 comparison")
	seed := flag.Int64("seed", 2016, "transcript synthesis seed")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file")
	flag.Parse()

	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatalf("benchgen: %v", err)
	}
	var out results
	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		rows, err := experiments.RunTable1(env, []int{4, 5})
		if err != nil {
			log.Fatalf("benchgen: table1: %v", err)
		}
		experiments.PrintTable1(os.Stdout, rows)
		fmt.Println()
		out.Table1 = rows
	}
	if want("table2") {
		rows, err := experiments.RunTable2(env, experiments.Table2Config{
			Semesters: []int{4, 5, 6, 7},
			Full:      *full,
		})
		if err != nil {
			log.Fatalf("benchgen: table2: %v", err)
		}
		experiments.PrintTable2(os.Stdout, rows)
		fmt.Println()
		out.Table2 = rows
	}
	if want("figure4") {
		points, err := experiments.RunFigure4(env, []int{6, 7, 8}, []int{10, 100, 500, 1000})
		if err != nil {
			log.Fatalf("benchgen: figure4: %v", err)
		}
		experiments.PrintFigure4(os.Stdout, points)
		fmt.Println()
		out.Figure4 = points
	}
	if *exp == "scaling" { // opt-in only: larger catalogs take a while
		points, err := experiments.RunScaling([]int{20, 30, 38, 50, 65}, 11)
		if err != nil {
			log.Fatalf("benchgen: scaling: %v", err)
		}
		experiments.PrintScaling(os.Stdout, points)
		fmt.Println()
		out.Scaling = points
	}
	if want("ablations") {
		rows, err := experiments.RunAblations(env, 3)
		if err != nil {
			log.Fatalf("benchgen: ablations: %v", err)
		}
		experiments.PrintAblations(os.Stdout, rows)
		fmt.Println()
		out.Ablations = rows
	}
	if want("figures") {
		if err := experiments.PrintWorkedExamples(os.Stdout); err != nil {
			log.Fatalf("benchgen: figures: %v", err)
		}
		fmt.Println()
	}
	if want("transcripts") {
		res, err := experiments.RunTranscripts(env, *nTranscripts, *seed, true)
		if err != nil {
			log.Fatalf("benchgen: transcripts: %v", err)
		}
		experiments.PrintTranscripts(os.Stdout, res)
		fmt.Println()
		out.Transcripts = &res
	}
	if out.Table1 == nil && out.Table2 == nil && out.Figure4 == nil && out.Transcripts == nil &&
		out.Ablations == nil && out.Scaling == nil && *exp != "figures" {
		log.Fatalf("benchgen: unknown experiment %q", *exp)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatalf("benchgen: %v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatalf("benchgen: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("benchgen: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run executes the CLI in-process; stdout noise is acceptable in tests —
// assertions focus on error behaviour and file outputs.
func runCLI(t *testing.T, args ...string) error {
	t.Helper()
	return run(args)
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},             // missing subcommand
		{"frobnicate"}, // unknown subcommand
		{"-catalog", "/no/such/file", "lint"},
		{"-registrar", "/no/such/file", "lint"},
		{"-window", "justone", "-registrar", "x", "lint"},
		{"deadline"},                        // missing start/end
		{"deadline", "-start", "Fall 2013"}, // missing end
		{"goal", "-start", "Fall 2014", "-end", "Fall 2015"},                               // no goal
		{"goal", "-start", "Fall 2014", "-end", "Fall 2015", "-goal-expr", "((("},          // bad expr
		{"goal", "-start", "Fall 2014", "-end", "Fall 2015", "-major", "-goal-expr", "x1"}, // two goals
		{"rank", "-start", "Fall 2014", "-end", "Fall 2015", "-major", "-ranking", "magic"},
		{"rank", "-start", "Fall 2014", "-end", "Fall 2015", "-major", "-k", "0"},
		{"options", "-start", "nope"},
		{"plan"}, // missing -file
		{"plan", "-file", "/no/such/file"},
		{"audit", "-completed", "NOPE"},
		{"audit", "-now", "nope"},
		{"whatif", "-start", "Fall 2013", "-end", "Fall 2015"}, // no goal
	}
	for _, args := range cases {
		if err := runCLI(t, args...); err == nil {
			t.Errorf("run(%q) succeeded, want error", strings.Join(args, " "))
		}
	}
}

func TestRunHappyPaths(t *testing.T) {
	// Redirect stdout so test output stays readable.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })

	cases := [][]string{
		{"catalog"},
		{"catalog", "-json"},
		{"lint"},
		{"options", "-start", "Fall 2013"},
		{"options", "-start", "Spring 2013"}, // only COSI 2A and 33B
		{"deadline", "-start", "Spring 2015", "-end", "Fall 2015", "-m", "2"},
		{"deadline", "-start", "Spring 2015", "-end", "Fall 2015", "-m", "2", "-count"},
		{"deadline", "-start", "Spring 2015", "-end", "Fall 2015", "-m", "2", "-tree"},
		{"deadline", "-start", "Spring 2015", "-end", "Fall 2015", "-m", "2", "-dot"},
		{"deadline", "-start", "Spring 2015", "-end", "Fall 2015", "-m", "2", "-json"},
		{"goal", "-start", "Fall 2013", "-end", "Fall 2015", "-m", "3", "-major", "-limit", "2"},
		{"goal", "-start", "Fall 2013", "-end", "Fall 2015", "-m", "3", "-major", "-count", "-no-pruning"},
		{"goal", "-start", "Fall 2014", "-end", "Fall 2015", "-m", "2",
			"-goal-courses", "COSI 11A,COSI 29A"},
		{"rank", "-start", "Fall 2013", "-end", "Fall 2015", "-m", "3", "-major", "-k", "2"},
		{"rank", "-start", "Fall 2013", "-end", "Fall 2015", "-m", "3", "-major",
			"-ranking", "workload", "-k", "1"},
		{"rank", "-start", "Fall 2013", "-end", "Fall 2015", "-m", "3", "-major",
			"-ranking", "reliability", "-k", "1"},
		{"audit", "-completed", "COSI 11A,COSI 29A", "-now", "Fall 2014", "-deadline", "Fall 2015"},
		{"whatif", "-completed", "COSI 11A,COSI 29A", "-start", "Spring 2014",
			"-end", "Fall 2015", "-m", "2", "-major", "-limit", "3"},
	}
	for _, args := range cases {
		if err := runCLI(t, args...); err != nil {
			t.Errorf("run(%q): %v", strings.Join(args, " "), err)
		}
	}
}

func TestRunPlanSubcommand(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.plan")
	if err := os.WriteFile(good, []byte(
		"student: good\nFall 2013: COSI 11A, COSI 29A\nSpring 2014: COSI 21A\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.plan")
	if err := os.WriteFile(bad, []byte(
		"student: bad\nFall 2013: COSI 21A\n"), 0o644); err != nil { // prereq unmet
		t.Fatal(err)
	}
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })

	if err := runCLI(t, "plan", "-file", good); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := runCLI(t, "plan", "-file", good, "-goal-courses", "COSI 11A,COSI 21A"); err != nil {
		t.Errorf("goal-meeting plan rejected: %v", err)
	}
	if err := runCLI(t, "plan", "-file", good, "-goal-courses", "COSI 31A"); err == nil {
		t.Error("goal-missing plan accepted")
	}
	if err := runCLI(t, "plan", "-file", bad); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestRunWithCatalogAndRegistrarFiles(t *testing.T) {
	dir := t.TempDir()
	// Round-trip the embedded catalog through -catalog.
	jsonPath := filepath.Join(dir, "catalog.json")
	{
		old := os.Stdout
		f, err := os.Create(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = f
		err = runCLI(t, "catalog", "-json")
		os.Stdout = old
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })
	if err := runCLI(t, "-catalog", jsonPath, "lint"); err != nil {
		t.Errorf("catalog file lint: %v", err)
	}
	// -major requires the embedded catalog.
	if err := runCLI(t, "-catalog", jsonPath, "goal",
		"-start", "Fall 2013", "-end", "Fall 2015", "-major"); err == nil {
		t.Error("-major with external catalog accepted")
	}
	// Registrar path.
	dumpPath := filepath.Join(dir, "dump.txt")
	if err := os.WriteFile(dumpPath, []byte(
		"course: COSI 11A\ntitle: Intro\ndescription: Intro. Usually offered every semester.\nworkload: 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	schedPath := filepath.Join(dir, "sched.txt")
	if err := os.WriteFile(schedPath, []byte("COSI 11A | Fall 2013\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCLI(t, "-registrar", dumpPath, "-schedule", schedPath,
		"-window", "Fall 2013,Fall 2015", "catalog"); err != nil {
		t.Errorf("registrar import: %v", err)
	}
}

func TestRunImpactSubcommand(t *testing.T) {
	dir := t.TempDir()
	oldCat := `[
	 {"id":"CS 1A","offered":["Fall 2013","Spring 2014"]},
	 {"id":"CS 2A","prereq":"CS 1A","offered":["Spring 2014"]}]`
	newCat := `[
	 {"id":"CS 1A","offered":["Fall 2013","Spring 2014"]},
	 {"id":"CS 2A","prereq":"CS 1A","offered":["Fall 2014"]}]`
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	for path, data := range map[string]string{oldPath: oldCat, newPath: newCat} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	plans := filepath.Join(dir, "plans.txt")
	if err := os.WriteFile(plans, []byte(
		"student: S1\nFall 2013: CS 1A\nSpring 2014: CS 2A\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old; devnull.Close() })

	if err := runCLI(t, "impact", "-old", oldPath, "-new", newPath,
		"-goal-courses", "CS 1A,CS 2A", "-start", "Fall 2013", "-end", "Fall 2014",
		"-m", "2", "-plans", plans); err != nil {
		t.Errorf("impact: %v", err)
	}
	// Missing required flags error.
	if err := runCLI(t, "impact", "-old", oldPath); err == nil {
		t.Error("missing flags accepted")
	}
	if err := runCLI(t, "impact", "-old", "/no/file", "-new", newPath,
		"-goal-courses", "CS 1A", "-start", "Fall 2013", "-end", "Fall 2014"); err == nil {
		t.Error("missing old file accepted")
	}
}

// Command coursenav is the CourseNavigator command-line front end: it
// answers the paper's three exploration queries over the embedded
// evaluation catalog, a catalog JSON file, or raw registrar dumps.
//
// Usage:
//
//	coursenav [global flags] <subcommand> [flags]
//
// Subcommands:
//
//	catalog     list the courses (-json for machine-readable output)
//	lint        report unreachable or never-offered courses
//	options     show the current option set Y for a student
//	deadline    generate all learning paths to an end semester (Alg. 1)
//	goal        generate goal-driven learning paths (§4.2)
//	rank        generate the top-k ranked learning paths (§4.3)
//	audit       degree-progress report against the embedded CS major
//	plan        validate a hand-written plan file against the catalog rules
//	whatif      rank this semester's selections by preserved goal paths
//	cohort      replan a whole cohort against a catalog scenario (batch
//	            what-if): per-student delay/stranding records + aggregate
//	impact      analyse a schedule revision: diff two catalogs, path-space
//	            delta, and which existing plans break
//
// The default path listing of deadline, goal and rank streams: each path
// is printed the moment the engine completes it (rank: best first), so
// the first lines appear while large explorations are still running. The
// graph renders (-dot, -tree, -json) and -count keep the materialised
// single-shot behaviour.
//
// Global flags select the catalog source:
//
//	-catalog file.json          catalog JSON (see `coursenav catalog -json`)
//	-registrar dump.txt         registrar catalog dump (internal/registrar)
//	-schedule records.txt       schedule records overriding dump phrases
//	-window "Fall 2011,Fall 2015"  schedule window for -registrar
//
// Without a source, the embedded 38-course Brandeis-like dataset is used.
//
// Examples:
//
//	coursenav deadline -start "Spring 2015" -end "Fall 2015" -m 2 -tree
//	coursenav goal -start "Fall 2013" -end "Fall 2015" -m 3 -major -limit 5
//	coursenav rank -start "Fall 2013" -end "Fall 2015" -m 3 -major \
//	    -ranking workload -k 3
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro"
	"repro/internal/catalog"
	"repro/internal/cohort"
	"repro/internal/degree"
	"repro/internal/impact"
	"repro/internal/term"
	"repro/internal/transcript"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coursenav:", err)
		os.Exit(1)
	}
}

type app struct {
	nav   *coursenav.Navigator
	major coursenav.Goal // set when the embedded catalog is used
}

func run(args []string) error {
	global := flag.NewFlagSet("coursenav", flag.ContinueOnError)
	catalogPath := global.String("catalog", "", "catalog JSON file")
	registrarPath := global.String("registrar", "", "registrar catalog dump")
	schedulePath := global.String("schedule", "", "schedule records file (with -registrar)")
	window := global.String("window", "Fall 2011,Fall 2015", "schedule window for -registrar, \"first,last\"")
	global.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: coursenav [global flags] <catalog|lint|options|deadline|goal|rank|audit|plan|whatif|cohort|impact> [flags]")
		global.PrintDefaults()
	}
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		global.Usage()
		return fmt.Errorf("missing subcommand")
	}

	a := &app{}
	switch {
	case *catalogPath != "":
		f, err := os.Open(*catalogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		a.nav, err = coursenav.NewFromJSON(f)
		if err != nil {
			return err
		}
	case *registrarPath != "":
		parts := strings.SplitN(*window, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-window must be \"first,last\"")
		}
		dump, err := os.Open(*registrarPath)
		if err != nil {
			return err
		}
		defer dump.Close()
		var sched *os.File
		if *schedulePath != "" {
			sched, err = os.Open(*schedulePath)
			if err != nil {
				return err
			}
			defer sched.Close()
		}
		var schedReader *os.File
		if sched != nil {
			schedReader = sched
		}
		if schedReader != nil {
			a.nav, err = coursenav.NewFromRegistrarDump(dump, schedReader, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
		} else {
			a.nav, err = coursenav.NewFromRegistrarDump(dump, nil, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
		}
		if err != nil {
			return err
		}
	default:
		a.nav, a.major = coursenav.Brandeis()
	}

	switch cmd, cmdArgs := rest[0], rest[1:]; cmd {
	case "catalog":
		return a.cmdCatalog(cmdArgs)
	case "lint":
		return a.cmdLint(cmdArgs)
	case "options":
		return a.cmdOptions(cmdArgs)
	case "deadline":
		return a.cmdDeadline(cmdArgs)
	case "goal":
		return a.cmdGoal(cmdArgs)
	case "rank":
		return a.cmdRank(cmdArgs)
	case "audit":
		return a.cmdAudit(cmdArgs)
	case "plan":
		return a.cmdPlan(cmdArgs)
	case "whatif":
		return a.cmdWhatIf(cmdArgs)
	case "cohort":
		return a.cmdCohort(cmdArgs)
	case "impact":
		return cmdImpact(cmdArgs)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func (a *app) cmdCatalog(args []string) error {
	fs := flag.NewFlagSet("catalog", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit catalog JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		return a.nav.WriteCatalogJSON(os.Stdout)
	}
	for _, c := range a.nav.Courses() {
		line := c.ID
		if c.Title != "" {
			line += " — " + c.Title
		}
		fmt.Println(line)
		if c.Prereq != "" {
			fmt.Printf("    prereq:   %s\n", c.Prereq)
		}
		fmt.Printf("    offered:  %s\n", strings.Join(c.Offered, ", "))
		if c.Workload > 0 {
			fmt.Printf("    workload: %.1f h/week\n", c.Workload)
		}
	}
	return nil
}

func (a *app) cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	unreachable, neverOffered := a.nav.Lint()
	for _, id := range unreachable {
		fmt.Printf("unreachable prerequisite chain: %s\n", id)
	}
	for _, id := range neverOffered {
		fmt.Printf("never offered: %s\n", id)
	}
	if len(unreachable)+len(neverOffered) == 0 {
		fmt.Println("catalog clean")
	}
	return nil
}

// studentFlags adds the shared enrollment-status flags.
type studentFlags struct {
	completed *string
	start     *string
	end       *string
	m         *int
	substrate *string
	workers   *int
}

func addStudentFlags(fs *flag.FlagSet) studentFlags {
	return studentFlags{
		completed: fs.String("completed", "", "comma-separated completed course IDs"),
		start:     fs.String("start", "", "current semester, e.g. \"Fall 2013\""),
		end:       fs.String("end", "", "end semester d, e.g. \"Fall 2015\""),
		m:         fs.Int("m", 3, "max courses per semester (0 = unlimited)"),
		substrate: fs.String("substrate", "auto", "search substrate: auto (counts use the status DAG), tree, dag"),
		workers:   fs.Int("workers", 0, "parallelise counting across this many goroutines (0/1 = serial)"),
	}
}

func (sf studentFlags) query() coursenav.Query {
	var completed []string
	if *sf.completed != "" {
		for _, c := range strings.Split(*sf.completed, ",") {
			completed = append(completed, strings.TrimSpace(c))
		}
	}
	return coursenav.Query{
		Completed:  completed,
		Start:      *sf.start,
		End:        *sf.end,
		MaxPerTerm: *sf.m,
		Substrate:  *sf.substrate,
		Workers:    *sf.workers,
	}
}

func (a *app) cmdOptions(args []string) error {
	fs := flag.NewFlagSet("options", flag.ContinueOnError)
	sf := addStudentFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := sf.query()
	opts, err := a.nav.FeasibleNow(q.Completed, q.Start)
	if err != nil {
		return err
	}
	if len(opts) == 0 {
		fmt.Println("no electable courses this semester")
		return nil
	}
	for _, id := range opts {
		fmt.Println(id)
	}
	return nil
}

// renderFlags control graph output.
type renderFlags struct {
	dot, tree, asJSON *bool
	count             *bool
	limit             *int
}

func addRenderFlags(fs *flag.FlagSet) renderFlags {
	return renderFlags{
		dot:    fs.Bool("dot", false, "emit Graphviz DOT"),
		tree:   fs.Bool("tree", false, "emit ASCII tree"),
		asJSON: fs.Bool("json", false, "emit graph JSON"),
		count:  fs.Bool("count", false, "count paths only (no graph, constant memory)"),
		limit:  fs.Int("limit", 10, "max paths to print (0 = all)"),
	}
}

func printSummary(sum coursenav.Summary) {
	sub := ""
	if sum.DAG {
		sub = " substrate=dag"
	}
	fmt.Printf("paths=%d goalPaths=%d nodes=%d edges=%d prunedTime=%d prunedAvail=%d elapsed=%v%s\n",
		sum.Paths, sum.GoalPaths, sum.Nodes, sum.Edges, sum.PrunedTime, sum.PrunedAvail, sum.Elapsed, sub)
}

// wantsGraph reports whether a graph render was requested; everything
// else streams.
func (rf renderFlags) wantsGraph() bool { return *rf.dot || *rf.tree || *rf.asJSON }

// render emits the materialised graph in the requested format.
func (a *app) render(g *coursenav.Graph, sum coursenav.Summary, rf renderFlags) error {
	printSummary(sum)
	switch {
	case *rf.dot:
		return g.WriteDOT(os.Stdout)
	case *rf.tree:
		return g.WriteTree(os.Stdout, 0)
	default:
		return g.WriteJSON(os.Stdout, 0)
	}
}

// streamList drives a streaming run, printing each path the moment the
// engine delivers it — the first line appears while the exploration is
// still working, and memory stays proportional to the search depth. Only
// the first `limit` paths are printed (0 = all); the run continues past
// the limit so the trailing summary still carries exact totals.
func streamList(limit int, goalOnly bool, run func(fn func(coursenav.StreamedPath) error) (coursenav.Summary, error)) error {
	shown := 0
	var total int64
	sum, err := run(func(p coursenav.StreamedPath) error {
		if goalOnly && !p.Goal {
			return nil
		}
		total++
		if limit > 0 && shown >= limit {
			return nil
		}
		shown++
		fmt.Printf("%3d. %s\n", shown, p.Path)
		return nil
	})
	if err != nil {
		return err
	}
	if int64(shown) < total {
		fmt.Printf("… (%d more; raise -limit or use -dot/-json)\n", total-int64(shown))
	}
	printSummary(sum)
	return nil
}

func (a *app) cmdDeadline(args []string) error {
	fs := flag.NewFlagSet("deadline", flag.ContinueOnError)
	sf := addStudentFlags(fs)
	rf := addRenderFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rf.count {
		sum, err := a.nav.DeadlineCount(sf.query())
		if err != nil {
			return err
		}
		printSummary(sum)
		return nil
	}
	if !rf.wantsGraph() {
		return streamList(*rf.limit, false, func(fn func(coursenav.StreamedPath) error) (coursenav.Summary, error) {
			return a.nav.DeadlineStream(context.Background(), sf.query(), fn)
		})
	}
	g, sum, err := a.nav.Deadline(sf.query())
	if err != nil {
		return err
	}
	return a.render(g, sum, rf)
}

// goalFlags parse the three goal forms.
type goalFlags struct {
	courses *string
	expr    *string
	major   *bool
}

func addGoalFlags(fs *flag.FlagSet) goalFlags {
	return goalFlags{
		courses: fs.String("goal-courses", "", "goal: complete these comma-separated courses"),
		expr:    fs.String("goal-expr", "", "goal: satisfy this boolean expression"),
		major:   fs.Bool("major", false, "goal: the embedded CS major (7 core + 5 electives)"),
	}
}

func (a *app) buildGoal(gf goalFlags) (coursenav.Goal, error) {
	set := 0
	if *gf.courses != "" {
		set++
	}
	if *gf.expr != "" {
		set++
	}
	if *gf.major {
		set++
	}
	if set != 1 {
		return coursenav.Goal{}, fmt.Errorf("set exactly one of -goal-courses, -goal-expr, -major")
	}
	switch {
	case *gf.major:
		if a.major == (coursenav.Goal{}) {
			return coursenav.Goal{}, fmt.Errorf("-major requires the embedded catalog")
		}
		return a.major, nil
	case *gf.courses != "":
		var ids []string
		for _, c := range strings.Split(*gf.courses, ",") {
			ids = append(ids, strings.TrimSpace(c))
		}
		return a.nav.GoalCourses(ids...)
	default:
		return a.nav.GoalExpr(*gf.expr)
	}
}

func (a *app) cmdGoal(args []string) error {
	fs := flag.NewFlagSet("goal", flag.ContinueOnError)
	sf := addStudentFlags(fs)
	rf := addRenderFlags(fs)
	gf := addGoalFlags(fs)
	noPrune := fs.Bool("no-pruning", false, "disable the §4.2 pruning strategies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	goal, err := a.buildGoal(gf)
	if err != nil {
		return err
	}
	q := sf.query()
	q.NoPruning = *noPrune
	if *rf.count {
		sum, err := a.nav.GoalPathsCount(q, goal)
		if err != nil {
			return err
		}
		printSummary(sum)
		return nil
	}
	if !rf.wantsGraph() {
		return streamList(*rf.limit, true, func(fn func(coursenav.StreamedPath) error) (coursenav.Summary, error) {
			return a.nav.GoalStream(context.Background(), q, goal, fn)
		})
	}
	g, sum, err := a.nav.GoalPaths(q, goal)
	if err != nil {
		return err
	}
	return a.render(g, sum, rf)
}

func (a *app) cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ContinueOnError)
	sf := addStudentFlags(fs)
	gf := addGoalFlags(fs)
	ranking := fs.String("ranking", "time", "ranking function: time, workload, reliability")
	k := fs.Int("k", 5, "number of top paths")
	histYears := fs.Int("history-years", 4, "synthetic offering-history length for reliability")
	seed := fs.Int64("seed", 1, "history synthesis seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	goal, err := a.buildGoal(gf)
	if err != nil {
		return err
	}
	if *ranking == "reliability" {
		if err := a.nav.UseSyntheticHistory(*histYears, *seed); err != nil {
			return err
		}
	}
	// Stream the top-k: best-first search delivers each path the moment
	// it is popped, best path first, long before the search finishes.
	n := 0
	sum, err := a.nav.TopKStream(context.Background(), sf.query(), goal, *ranking, *k, func(p coursenav.StreamedPath) error {
		n++
		fmt.Printf("%3d. [%s=%.4g] %s\n", n, *ranking, p.Value, p.Path)
		return nil
	})
	if err != nil {
		return err
	}
	printSummary(sum)
	if n < *k {
		fmt.Printf("only %d goal paths exist\n", n)
	}
	return nil
}

func (a *app) cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	completed := fs.String("completed", "", "comma-separated completed course IDs")
	now := fs.String("now", "", "audit semester, e.g. \"Fall 2014\" (enables electable-now)")
	deadline := fs.String("deadline", "", "target semester (enables reachability check)")
	m := fs.Int("m", 3, "max courses per semester for the reachability check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if a.major == (coursenav.Goal{}) {
		return fmt.Errorf("audit requires the embedded catalog's degree goal")
	}
	var done []string
	if *completed != "" {
		for _, c := range strings.Split(*completed, ",") {
			done = append(done, strings.TrimSpace(c))
		}
	}
	rep, err := a.nav.Audit(done, a.major, *now, *deadline, *m)
	if err != nil {
		return err
	}
	return rep.Write(os.Stdout)
}

// cmdPlan validates a hand-written plan file (the transcript text format:
// "student:" then "TERM: COURSE, COURSE" lines) against the catalog's
// offering and prerequisite rules, and optionally a goal.
func (a *app) cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	file := fs.String("file", "", "plan file (transcript format); \"-\" for stdin")
	m := fs.Int("m", 3, "max courses per semester (0 = unlimited)")
	gf := addGoalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("plan: -file is required")
	}
	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var goal coursenav.Goal
	wantGoal := *gf.courses != "" || *gf.expr != "" || *gf.major
	if wantGoal {
		g, err := a.buildGoal(gf)
		if err != nil {
			return err
		}
		goal = g
	}
	results, err := a.nav.ValidatePlans(in, *m, goal)
	if err != nil {
		return err
	}
	failures := 0
	for _, r := range results {
		switch {
		case r.Err != "":
			failures++
			fmt.Printf("✗ %s: %s\n", r.Student, r.Err)
		case wantGoal && !r.GoalMet:
			failures++
			fmt.Printf("✗ %s: valid plan but the goal is not met\n", r.Student)
		default:
			fmt.Printf("✓ %s: valid (%d courses)\n", r.Student, r.Courses)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d plans invalid", failures, len(results))
	}
	return nil
}

func (a *app) cmdWhatIf(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	sf := addStudentFlags(fs)
	gf := addGoalFlags(fs)
	limit := fs.Int("limit", 15, "max selections to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	goal, err := a.buildGoal(gf)
	if err != nil {
		return err
	}
	impacts, err := a.nav.CompareSelections(sf.query(), goal)
	if err != nil {
		return err
	}
	dead := 0
	shown := 0
	for _, imp := range impacts {
		if imp.GoalPaths == 0 {
			dead++
			continue
		}
		if *limit > 0 && shown >= *limit {
			continue
		}
		shown++
		fmt.Printf("%8d paths  %2d next options  {%s}\n",
			imp.GoalPaths, imp.NextOptions, strings.Join(imp.Courses, ", "))
	}
	if dead > 0 {
		fmt.Printf("%d selections close off the goal entirely\n", dead)
	}
	return nil
}

// parseChanges parses a scenario change list: semicolon-separated
// entries of the form "COURSE@Term" or "COURSE@Term|Term" (the terms the
// course is cancelled from / added to).
func parseChanges(s string) ([]cohort.Change, error) {
	var out []cohort.Change
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		course, terms, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("change %q: want COURSE@Term or COURSE@Term|Term", entry)
		}
		ch := cohort.Change{Course: strings.TrimSpace(course)}
		for _, t := range strings.Split(terms, "|") {
			if t = strings.TrimSpace(t); t != "" {
				ch.Terms = append(ch.Terms, t)
			}
		}
		if ch.Course == "" || len(ch.Terms) == 0 {
			return nil, fmt.Errorf("change %q: want COURSE@Term or COURSE@Term|Term", entry)
		}
		out = append(out, ch)
	}
	return out, nil
}

// cmdCohort replans a whole cohort against a catalog scenario — the
// batch form of whatif. Members come from a transcript file or are
// synthesized from a seed; each is replanned through the same engine a
// single-student query uses, with identical sub-requests memoised.
func (a *app) cmdCohort(args []string) error {
	fs := flag.NewFlagSet("cohort", flag.ContinueOnError)
	start := fs.String("start", "", "synthesis window start, e.g. \"Fall 2013\" (with -synthesize)")
	end := fs.String("end", "", "deadline semester d every member is replanned against")
	m := fs.Int("m", 3, "max courses per semester (0 = unlimited)")
	gf := addGoalFlags(fs)
	transcripts := fs.String("transcripts", "", "member source: transcript file (internal/transcript format)")
	synthesize := fs.Int("synthesize", 0, "member source: synthesize this many students from -member-seed")
	memberSeed := fs.Int64("member-seed", 1, "cohort synthesis seed (with -synthesize)")
	cancel := fs.String("cancel", "", "scenario: cancel offerings, \"COURSE@Term|Term;COURSE@Term\"")
	add := fs.String("add", "", "scenario: add offerings, same form as -cancel")
	samples := fs.Int("samples", 0, "Monte-Carlo offering-schedule samples for reliability (0 = off)")
	scenarioSeed := fs.Int64("scenario-seed", 1, "schedule sampling seed (with -samples)")
	histYears := fs.Int("history-years", cohort.DefaultHistoryYears, "offering-history length for sampling")
	released := fs.String("released", "", "last term with a published schedule (default: -start)")
	horizon := fs.Int("horizon", cohort.DefaultHorizon, "semesters past -end to probe for delay")
	baseline := fs.Bool("baseline", false, "also count each member's paths under the unmodified catalog")
	detail := fs.Bool("detail", false, "embed each member's what-if replan in the NDJSON records")
	ndjson := fs.Bool("ndjson", false, "emit the API's NDJSON records instead of the table")
	workers := fs.Int("workers", 1, "member-pipeline width (records stay in member order; output is identical at any width)")
	shared := fs.Bool("shared", true, "count on the cross-member shared DAG substrate (false = dedicated run per unit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *end == "" {
		return fmt.Errorf("cohort: -end is required")
	}
	if (*transcripts != "") == (*synthesize > 0) {
		return fmt.Errorf("cohort: set exactly one member source: -transcripts or -synthesize")
	}
	set := 0
	for _, on := range []bool{*gf.courses != "", *gf.expr != "", *gf.major} {
		if on {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("set exactly one of -goal-courses, -goal-expr, -major")
	}
	// Goals are catalog-bound: every variant (scenario delta, each
	// sampled schedule, the baseline) rebuilds the goal on its own
	// catalog.
	makeGoal := func(nav *coursenav.Navigator) (coursenav.Goal, error) {
		switch {
		case *gf.major:
			return nav.BrandeisMajor()
		case *gf.courses != "":
			var ids []string
			for _, c := range strings.Split(*gf.courses, ",") {
				ids = append(ids, strings.TrimSpace(c))
			}
			return nav.GoalCourses(ids...)
		default:
			return nav.GoalExpr(*gf.expr)
		}
	}

	sc := cohort.Scenario{
		Samples:         *samples,
		Seed:            *scenarioSeed,
		HistoryYears:    *histYears,
		ReleasedThrough: *released,
	}
	var err error
	if sc.Cancel, err = parseChanges(*cancel); err != nil {
		return fmt.Errorf("-cancel: %v", err)
	}
	if sc.Add, err = parseChanges(*add); err != nil {
		return fmt.Errorf("-add: %v", err)
	}
	sc.Canonicalize(a.nav.CanonicalCourse)
	if sc.ReleasedThrough == "" {
		sc.ReleasedThrough = *start
	}
	cat := a.nav.Catalog()
	scenCat, err := sc.Apply(cat)
	if err != nil {
		return err
	}
	scenNav := a.nav
	if scenCat != cat {
		scenNav = coursenav.NewFromCatalog(scenCat)
	}
	sampleCats, err := sc.SampleSchedules(scenCat)
	if err != nil {
		return err
	}
	sampleNavs := make([]*coursenav.Navigator, len(sampleCats))
	for i, c := range sampleCats {
		sampleNavs[i] = coursenav.NewFromCatalog(c)
	}

	var members []cohort.Member
	if *transcripts != "" {
		f, err := os.Open(*transcripts)
		if err != nil {
			return err
		}
		trs, err := transcript.Parse(f, cat.Calendar())
		f.Close()
		if err != nil {
			return err
		}
		if members, err = cohort.FromTranscripts(cat, trs, *m); err != nil {
			return err
		}
	} else {
		if *start == "" {
			return fmt.Errorf("cohort: -synthesize requires -start")
		}
		startT, err := term.Parse(cat.Calendar(), *start)
		if err != nil {
			return err
		}
		endT, err := term.Parse(cat.Calendar(), *end)
		if err != nil {
			return err
		}
		goal, err := makeGoal(a.nav)
		if err != nil {
			return err
		}
		members, err = cohort.Synthesize(cat, goal.Inner(), startT, endT, *m, *synthesize,
			rand.New(rand.NewSource(*memberSeed)))
		if err != nil {
			return err
		}
	}

	np := &cohort.NavPlanner{
		Base:       a.nav,
		Scenario:   scenNav,
		Samples:    sampleNavs,
		MakeGoal:   makeGoal,
		MaxPerTerm: *m,
	}
	var planner cohort.Planner = np
	var sp *cohort.SharedPlanner
	if *shared {
		// Counting units run on one interned DAG + tally memo per catalog
		// variant, shared across all members; replans keep the dedicated
		// path. Identical results either way — -shared=false is the
		// apples-to-apples comparison switch.
		sp = &cohort.SharedPlanner{
			Inner:    np,
			Base:     a.nav,
			Scenario: scenNav,
			Samples:  sampleNavs,
			MakeGoal: makeGoal,
			Query:    coursenav.Query{MaxPerTerm: *m},
		}
		planner = sp
	}
	runner := cohort.Runner{
		Planner: planner,
		Opts: cohort.Options{
			End:      *end,
			Horizon:  *horizon,
			Baseline: *baseline,
			Detail:   *detail,
			Samples:  *samples,
			Calendar: cat.Calendar(),
			Workers:  *workers,
		},
	}
	enc := json.NewEncoder(os.Stdout)
	sum, err := runner.Run(context.Background(), members, func(rec cohort.MemberRecord) error {
		if *ndjson {
			return enc.Encode(struct {
				Member cohort.MemberRecord `json:"member"`
			}{rec})
		}
		line := fmt.Sprintf("%-10s goalPaths=%d", rec.Student, rec.GoalPaths)
		if rec.Baseline != nil {
			line += fmt.Sprintf(" baseline=%d", *rec.Baseline)
		}
		if rec.Delay > 0 {
			line += fmt.Sprintf(" delay=%d", rec.Delay)
		}
		if rec.Stranded {
			line += " STRANDED"
		}
		if rec.Reliability != nil {
			line += fmt.Sprintf(" reliability=%.2f", *rec.Reliability)
		}
		if rec.Error != "" {
			line += " error=" + rec.Error
		}
		fmt.Println(line)
		return nil
	})
	if err != nil {
		return err
	}
	if *ndjson {
		return enc.Encode(struct {
			Summary cohort.Summary `json:"summary"`
		}{sum})
	}
	fmt.Printf("members=%d affected=%d delayed=%d stranded=%d errors=%d meanDelay=%.2f units=%d reused=%d\n",
		sum.Members, sum.Affected, sum.Delayed, sum.Stranded, sum.Errors, sum.MeanDelay, sum.Units, sum.Coalesced)
	if sp != nil {
		st := sp.Stats()
		fmt.Printf("substrate: statuses=%d hits=%d dpReused=%d builds=%d evictions=%d\n",
			st.Statuses, st.Hits, st.DPReused, st.Builds, st.Evictions)
	}
	return nil
}

// cmdImpact is catalog-source independent (it loads its own two catalog
// versions), so it is a free function rather than an app method.
func cmdImpact(args []string) error {
	fs := flag.NewFlagSet("impact", flag.ContinueOnError)
	oldPath := fs.String("old", "", "old catalog JSON")
	newPath := fs.String("new", "", "revised catalog JSON")
	goalCourses := fs.String("goal-courses", "", "goal: complete these comma-separated courses")
	completed := fs.String("completed", "", "comma-separated completed course IDs")
	start := fs.String("start", "", "current semester")
	end := fs.String("end", "", "end semester")
	m := fs.Int("m", 3, "max courses per semester")
	plansPath := fs.String("plans", "", "existing plans file (transcript format) to replay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" || *goalCourses == "" || *start == "" || *end == "" {
		return fmt.Errorf("impact: -old, -new, -goal-courses, -start and -end are required")
	}
	loadCat := func(path string) (*catalog.Catalog, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return catalog.ReadJSON(term.TwoSeason, f)
	}
	oldCat, err := loadCat(*oldPath)
	if err != nil {
		return err
	}
	newCat, err := loadCat(*newPath)
	if err != nil {
		return err
	}
	startTerm, err := term.Parse(term.TwoSeason, *start)
	if err != nil {
		return err
	}
	endTerm, err := term.Parse(term.TwoSeason, *end)
	if err != nil {
		return err
	}
	var ids []string
	for _, c := range strings.Split(*goalCourses, ",") {
		ids = append(ids, strings.TrimSpace(c))
	}
	var done []string
	if *completed != "" {
		for _, c := range strings.Split(*completed, ",") {
			done = append(done, strings.TrimSpace(c))
		}
	}
	analysis := impact.Analysis{
		Start: startTerm, End: endTerm,
		Completed: done, MaxPerTerm: *m,
		Goal: func(cat *catalog.Catalog) (degree.Goal, error) {
			return degree.NewCourseSet(cat, ids...)
		},
	}
	if *plansPath != "" {
		f, err := os.Open(*plansPath)
		if err != nil {
			return err
		}
		plans, err := transcript.Parse(f, term.TwoSeason)
		f.Close()
		if err != nil {
			return err
		}
		analysis.Plans = plans
	}
	rep, err := impact.Compare(oldCat, newCat, analysis)
	if err != nil {
		return err
	}
	return impact.Write(os.Stdout, rep)
}

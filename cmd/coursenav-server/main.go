// Command coursenav-server runs CourseNavigator's front-end service
// (paper §3) as an HTTP/JSON API.
//
// Usage:
//
//	coursenav-server [-addr :8080] [-catalog file.json]
//	                 [-dump catalog.txt] [-schedule schedule.txt]
//	                 [-first "Fall 2011"] [-last "Fall 2015"] [-lenient]
//	                 [-tenants manifest.json]
//	                 [-node-budget 500000] [-history-years 4]
//	                 [-request-timeout 10s] [-max-concurrent 64]
//	                 [-tenant-max-concurrent 0] [-admission-queue 64]
//	                 [-brownout=true] [-cache-bytes 67108864]
//
// Without a catalog source the embedded Brandeis-like evaluation dataset
// is served. -catalog loads catalog JSON; -dump (optionally with
// -schedule) ingests raw registrar text through the back-end parsers,
// and -lenient quarantines malformed records instead of failing the
// import. Either way the catalog becomes the "default" tenant, served
// on the bare /api/v1/... routes.
//
// -tenants loads a multi-tenant manifest instead: each entry hosts one
// institution's catalog in isolation under /api/v1/t/{tenant}/... with
// its own snapshot generations, result-cache partition (a fair share of
// -cache-bytes) and concurrency quota (-tenant-max-concurrent, or the
// entry's own maxConcurrent). Relative paths in the manifest resolve
// against the manifest's directory. See API.md for the manifest format;
// a quick check:
//
//	curl localhost:8080/api/v1/catalog
//	curl localhost:8080/api/v1/t/acme/catalog
//	curl -X POST localhost:8080/api/v1/explore/ranked -d '{
//	  "query":{"start":"Fall 2013","end":"Fall 2015","maxPerTerm":3},
//	  "goal":{"courses":["COSI 11A","COSI 21A"]},"ranking":"time","k":3}'
//
// When a tenant has a file-backed catalog source, it supports hot
// reload: POST /api/v1[/t/{tenant}]/admin/reload re-parses the source,
// validates it with the integrity checker and atomically swaps it in; a
// failing parse or validation leaves the serving catalog untouched.
// SIGHUP reloads every tenant the same way. In-flight explorations
// always finish on the snapshot they started with.
//
// On SIGINT/SIGTERM the server stops accepting connections and lets
// in-flight explorations finish (each is already bounded by
// -request-timeout) before exiting; connections still open after
// -drain-timeout are closed forcibly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/tenant"
	"repro/internal/usage"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	catalogPath := flag.String("catalog", "", "catalog JSON file (default: embedded dataset)")
	dumpPath := flag.String("dump", "", "registrar catalog dump (text; alternative to -catalog)")
	schedulePath := flag.String("schedule", "", "registrar schedule records overlaid on -dump")
	firstTerm := flag.String("first", "Fall 2011", "first term of the -dump schedule window")
	lastTerm := flag.String("last", "Fall 2015", "last term of the -dump schedule window")
	lenient := flag.Bool("lenient", false, "quarantine malformed -dump records instead of failing the import")
	tenantsPath := flag.String("tenants", "", "multi-tenant manifest JSON (alternative to -catalog/-dump)")
	nodeBudget := flag.Int("node-budget", server.DefaultNodeBudget, "per-request learning-graph node budget")
	histYears := flag.Int("history-years", 4, "synthetic offering-history length for reliability ranking")
	seed := flag.Int64("seed", 1, "history synthesis seed")
	requestTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request exploration wall-clock cap")
	maxConcurrent := flag.Int("max-concurrent", server.DefaultMaxConcurrent, "in-flight explorations before the admission queue engages")
	tenantMaxConcurrent := flag.Int("tenant-max-concurrent", 0, "per-tenant in-flight exploration quota (0 = global limit only)")
	admissionQueue := flag.Int("admission-queue", server.DefaultAdmissionQueue, "cost-aware admission queue depth; 0 sheds instantly at the concurrency limit")
	cohortWorkers := flag.Int("cohort-workers", server.DefaultCohortWorkers, "default cohort member-pipeline width when the request leaves workers unset")
	brownout := flag.Bool("brownout", true, "serve stale cached results and clamp budgets while degraded")
	cacheBytes := flag.Int64("cache-bytes", server.DefaultCacheBytes, "result-cache byte budget, carved fairly across tenants")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain limit")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (trusted networks only)")
	flag.Parse()
	if *catalogPath != "" && *dumpPath != "" {
		log.Fatal("coursenav-server: -catalog and -dump are mutually exclusive")
	}
	if *tenantsPath != "" && (*catalogPath != "" || *dumpPath != "") {
		log.Fatal("coursenav-server: -tenants and -catalog/-dump are mutually exclusive")
	}

	// The single-catalog flags are exactly a one-tenant spec; the same
	// loader plumbing serves both modes.
	defaultSpec := tenant.Spec{
		ID: tenant.Default, Catalog: *catalogPath, Dump: *dumpPath, Schedule: *schedulePath,
		First: *firstTerm, Last: *lastTerm, Lenient: *lenient,
		HistoryYears: *histYears, Seed: *seed,
	}
	load := server.Loader(defaultSpec.Loader(""))
	nav, rep, err := load()
	if err != nil {
		log.Fatalf("coursenav-server: %v", err)
	}
	if rep != nil {
		for _, d := range rep.Diagnostics {
			log.Printf("import: %s", d)
		}
		if len(rep.Quarantined) > 0 {
			log.Printf("import: %d record(s) quarantined: %v", len(rep.Quarantined), rep.Quarantined)
		}
	}
	if report := nav.Integrity(); report.Errors+report.Warnings > 0 {
		log.Printf("integrity: %s", report.Summary())
		for _, is := range report.Issues {
			log.Printf("integrity: %s", is)
		}
	}

	s := server.New(nav)
	s.NodeBudget = *nodeBudget
	s.RequestTimeout = *requestTimeout
	s.MaxConcurrent = *maxConcurrent
	s.TenantMaxConcurrent = *tenantMaxConcurrent
	s.AdmissionQueue = *admissionQueue
	s.CohortWorkers = *cohortWorkers
	s.Brownout = *brownout
	s.CacheBytes = *cacheBytes
	s.Cache.SetBudget(*cacheBytes) // single-tenant share until a manifest grows the fleet
	if *catalogPath != "" || *dumpPath != "" {
		s.Loader = load // embedded dataset has nothing on disk to re-read
	}
	if *tenantsPath != "" {
		m, baseDir, err := tenant.Load(*tenantsPath)
		if err != nil {
			log.Fatalf("coursenav-server: %v", err)
		}
		for _, st := range s.LoadTenants(m, baseDir) {
			if !st.OK {
				log.Fatalf("coursenav-server: tenant %s: %s", st.Tenant, st.Reason)
			}
			log.Printf("coursenav-server: tenant %s: %d courses (generation %d)", st.Tenant, st.Courses, st.Generation)
		}
	}
	if *pprofOn {
		s.EnablePprof()
		log.Printf("coursenav-server: pprof enabled at /debug/pprof/")
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(s),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP triggers the same validate-then-swap reload as the admin
	// endpoints, across every tenant; each outcome lands in the usage
	// counters attributed to its tenant.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			began := time.Now()
			for _, st := range s.ReloadAll() {
				outcome, status := "applied", http.StatusOK
				if !st.OK {
					outcome, status = "rejected", http.StatusUnprocessableEntity
					log.Printf("coursenav-server: SIGHUP reload: tenant %s rejected: %s", st.Tenant, st.Reason)
				} else {
					log.Printf("coursenav-server: SIGHUP reload: tenant %s applied: generation %d, %d courses", st.Tenant, st.Generation, st.Courses)
				}
				s.Usage.Record(usage.Event{
					When:     time.Now(),
					Endpoint: "SIGHUP reload",
					Tenant:   st.Tenant,
					Reload:   outcome,
					Duration: time.Since(began),
					Status:   status,
				})
			}
		}
	}()

	errc := make(chan error, 1)
	go func() {
		log.Printf("coursenav-server: %d courses, listening on %s", nav.NumCourses(), *addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("coursenav-server: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately rather than waiting on the drain
	log.Printf("coursenav-server: shutting down, draining in-flight requests (limit %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("coursenav-server: drain incomplete: %v", err)
		_ = httpServer.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("coursenav-server: %v", err)
	}
	log.Printf("coursenav-server: bye")
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		next.ServeHTTP(w, r)
		log.Println(fmt.Sprintf("%s %s (%v)", r.Method, r.URL.Path, time.Since(began).Round(time.Microsecond)))
	})
}

// Command coursenav-server runs CourseNavigator's front-end service
// (paper §3) as an HTTP/JSON API.
//
// Usage:
//
//	coursenav-server [-addr :8080] [-catalog file.json]
//	                 [-dump catalog.txt] [-schedule schedule.txt]
//	                 [-first "Fall 2011"] [-last "Fall 2015"] [-lenient]
//	                 [-node-budget 500000] [-history-years 4]
//	                 [-request-timeout 10s] [-max-concurrent 64]
//
// Without a catalog source the embedded Brandeis-like evaluation dataset
// is served. -catalog loads catalog JSON; -dump (optionally with
// -schedule) ingests raw registrar text through the back-end parsers,
// and -lenient quarantines malformed records instead of failing the
// import. See API.md for the endpoint reference; a quick check:
//
//	curl localhost:8080/api/v1/catalog
//	curl -X POST localhost:8080/api/v1/explore/ranked -d '{
//	  "query":{"start":"Fall 2013","end":"Fall 2015","maxPerTerm":3},
//	  "goal":{"courses":["COSI 11A","COSI 21A"]},"ranking":"time","k":3}'
//
// When a file-backed catalog source is configured, the server supports
// hot reload: POST /api/v1/admin/reload (or SIGHUP) re-parses the
// source, validates it with the integrity checker and atomically swaps
// it in; a failing parse or validation leaves the serving catalog
// untouched. In-flight explorations always finish on the snapshot they
// started with.
//
// On SIGINT/SIGTERM the server stops accepting connections and lets
// in-flight explorations finish (each is already bounded by
// -request-timeout) before exiting; connections still open after
// -drain-timeout are closed forcibly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/usage"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	catalogPath := flag.String("catalog", "", "catalog JSON file (default: embedded dataset)")
	dumpPath := flag.String("dump", "", "registrar catalog dump (text; alternative to -catalog)")
	schedulePath := flag.String("schedule", "", "registrar schedule records overlaid on -dump")
	firstTerm := flag.String("first", "Fall 2011", "first term of the -dump schedule window")
	lastTerm := flag.String("last", "Fall 2015", "last term of the -dump schedule window")
	lenient := flag.Bool("lenient", false, "quarantine malformed -dump records instead of failing the import")
	nodeBudget := flag.Int("node-budget", server.DefaultNodeBudget, "per-request learning-graph node budget")
	histYears := flag.Int("history-years", 4, "synthetic offering-history length for reliability ranking")
	seed := flag.Int64("seed", 1, "history synthesis seed")
	requestTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request exploration wall-clock cap")
	maxConcurrent := flag.Int("max-concurrent", server.DefaultMaxConcurrent, "in-flight explorations before shedding load with 429")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain limit")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (trusted networks only)")
	flag.Parse()
	if *catalogPath != "" && *dumpPath != "" {
		log.Fatal("coursenav-server: -catalog and -dump are mutually exclusive")
	}

	load := newLoader(*catalogPath, *dumpPath, *schedulePath, *firstTerm, *lastTerm, *lenient, *histYears, *seed)
	nav, rep, err := load()
	if err != nil {
		log.Fatalf("coursenav-server: %v", err)
	}
	if rep != nil {
		for _, d := range rep.Diagnostics {
			log.Printf("import: %s", d)
		}
		if len(rep.Quarantined) > 0 {
			log.Printf("import: %d record(s) quarantined: %v", len(rep.Quarantined), rep.Quarantined)
		}
	}
	if report := nav.Integrity(); report.Errors+report.Warnings > 0 {
		log.Printf("integrity: %s", report.Summary())
		for _, is := range report.Issues {
			log.Printf("integrity: %s", is)
		}
	}

	s := server.New(nav)
	s.NodeBudget = *nodeBudget
	s.RequestTimeout = *requestTimeout
	s.MaxConcurrent = *maxConcurrent
	if *catalogPath != "" || *dumpPath != "" {
		s.Loader = load // embedded dataset has nothing on disk to re-read
	}
	if *pprofOn {
		s.EnablePprof()
		log.Printf("coursenav-server: pprof enabled at /debug/pprof/")
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(s),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP triggers the same validate-then-swap reload as the admin
	// endpoint; the outcome lands in the usage counters either way.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			began := time.Now()
			st := s.ReloadNow()
			outcome, status := "applied", http.StatusOK
			if !st.OK {
				outcome, status = "rejected", http.StatusUnprocessableEntity
				log.Printf("coursenav-server: SIGHUP reload rejected: %s", st.Reason)
			} else {
				log.Printf("coursenav-server: SIGHUP reload applied: generation %d, %d courses", st.Generation, st.Courses)
			}
			s.Usage.Record(usage.Event{
				When:     time.Now(),
				Endpoint: "SIGHUP reload",
				Reload:   outcome,
				Duration: time.Since(began),
				Status:   status,
			})
		}
	}()

	errc := make(chan error, 1)
	go func() {
		log.Printf("coursenav-server: %d courses, listening on %s", nav.NumCourses(), *addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("coursenav-server: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately rather than waiting on the drain
	log.Printf("coursenav-server: shutting down, draining in-flight requests (limit %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("coursenav-server: drain incomplete: %v", err)
		_ = httpServer.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("coursenav-server: %v", err)
	}
	log.Printf("coursenav-server: bye")
}

// newLoader builds the catalog-loading function used both at startup and
// for every hot reload, so a reload sees exactly what a restart would.
func newLoader(catalogPath, dumpPath, schedulePath, firstTerm, lastTerm string, lenient bool, histYears int, seed int64) server.Loader {
	return func() (*coursenav.Navigator, *coursenav.ImportReport, error) {
		var (
			nav *coursenav.Navigator
			rep *coursenav.ImportReport
			err error
		)
		switch {
		case dumpPath != "":
			nav, rep, err = loadDump(dumpPath, schedulePath, firstTerm, lastTerm, lenient)
		case catalogPath != "":
			nav, err = loadJSON(catalogPath)
		default:
			nav, _ = coursenav.Brandeis()
		}
		if err != nil {
			return nil, rep, err
		}
		if err := nav.UseSyntheticHistory(histYears, seed); err != nil {
			return nil, rep, fmt.Errorf("history: %v", err)
		}
		return nav, rep, nil
	}
}

func loadJSON(path string) (*coursenav.Navigator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return coursenav.NewFromJSON(f)
}

func loadDump(dumpPath, schedulePath, firstTerm, lastTerm string, lenient bool) (*coursenav.Navigator, *coursenav.ImportReport, error) {
	df, err := os.Open(dumpPath)
	if err != nil {
		return nil, nil, err
	}
	defer df.Close()
	var schedule *os.File
	if schedulePath != "" {
		schedule, err = os.Open(schedulePath)
		if err != nil {
			return nil, nil, err
		}
		defer schedule.Close()
	}
	var sched io.Reader // typed nil *os.File would defeat the nil check inside
	if schedule != nil {
		sched = schedule
	}
	if lenient {
		return coursenav.NewFromRegistrarDumpLenient(df, sched, firstTerm, lastTerm)
	}
	nav, err := coursenav.NewFromRegistrarDump(df, sched, firstTerm, lastTerm)
	return nav, nil, err
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		next.ServeHTTP(w, r)
		log.Println(fmt.Sprintf("%s %s (%v)", r.Method, r.URL.Path, time.Since(began).Round(time.Microsecond)))
	})
}

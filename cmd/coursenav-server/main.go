// Command coursenav-server runs CourseNavigator's front-end service
// (paper §3) as an HTTP/JSON API.
//
// Usage:
//
//	coursenav-server [-addr :8080] [-catalog file.json]
//	                 [-node-budget 500000] [-history-years 4]
//
// Without -catalog the embedded Brandeis-like evaluation dataset is
// served. See internal/server for the endpoint reference; a quick check:
//
//	curl localhost:8080/api/catalog
//	curl -X POST localhost:8080/api/explore/ranked -d '{
//	  "query":{"start":"Fall 2013","end":"Fall 2015","maxPerTerm":3},
//	  "goal":{"courses":["COSI 11A","COSI 21A"]},"ranking":"time","k":3}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	catalogPath := flag.String("catalog", "", "catalog JSON file (default: embedded dataset)")
	nodeBudget := flag.Int("node-budget", server.DefaultNodeBudget, "per-request learning-graph node budget")
	histYears := flag.Int("history-years", 4, "synthetic offering-history length for reliability ranking")
	seed := flag.Int64("seed", 1, "history synthesis seed")
	flag.Parse()

	var nav *coursenav.Navigator
	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			log.Fatalf("coursenav-server: %v", err)
		}
		nav2, err := coursenav.NewFromJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("coursenav-server: %v", err)
		}
		nav = nav2
	} else {
		nav, _ = coursenav.Brandeis()
	}
	if err := nav.UseSyntheticHistory(*histYears, *seed); err != nil {
		log.Fatalf("coursenav-server: history: %v", err)
	}
	if unreachable, never := nav.Lint(); len(unreachable)+len(never) > 0 {
		log.Printf("warning: catalog lint: unreachable=%v never-offered=%v", unreachable, never)
	}

	s := server.New(nav)
	s.NodeBudget = *nodeBudget
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(s),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("coursenav-server: %d courses, listening on %s", nav.NumCourses(), *addr)
	if err := httpServer.ListenAndServe(); err != nil {
		log.Fatalf("coursenav-server: %v", err)
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		next.ServeHTTP(w, r)
		log.Println(fmt.Sprintf("%s %s (%v)", r.Method, r.URL.Path, time.Since(began).Round(time.Microsecond)))
	})
}

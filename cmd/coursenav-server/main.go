// Command coursenav-server runs CourseNavigator's front-end service
// (paper §3) as an HTTP/JSON API.
//
// Usage:
//
//	coursenav-server [-addr :8080] [-catalog file.json]
//	                 [-node-budget 500000] [-history-years 4]
//	                 [-request-timeout 10s] [-max-concurrent 64]
//
// Without -catalog the embedded Brandeis-like evaluation dataset is
// served. See API.md for the endpoint reference; a quick check:
//
//	curl localhost:8080/api/v1/catalog
//	curl -X POST localhost:8080/api/v1/explore/ranked -d '{
//	  "query":{"start":"Fall 2013","end":"Fall 2015","maxPerTerm":3},
//	  "goal":{"courses":["COSI 11A","COSI 21A"]},"ranking":"time","k":3}'
//
// On SIGINT/SIGTERM the server stops accepting connections and lets
// in-flight explorations finish (each is already bounded by
// -request-timeout) before exiting; connections still open after
// -drain-timeout are closed forcibly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	catalogPath := flag.String("catalog", "", "catalog JSON file (default: embedded dataset)")
	nodeBudget := flag.Int("node-budget", server.DefaultNodeBudget, "per-request learning-graph node budget")
	histYears := flag.Int("history-years", 4, "synthetic offering-history length for reliability ranking")
	seed := flag.Int64("seed", 1, "history synthesis seed")
	requestTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request exploration wall-clock cap")
	maxConcurrent := flag.Int("max-concurrent", server.DefaultMaxConcurrent, "in-flight explorations before shedding load with 429")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain limit")
	flag.Parse()

	var nav *coursenav.Navigator
	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			log.Fatalf("coursenav-server: %v", err)
		}
		nav2, err := coursenav.NewFromJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("coursenav-server: %v", err)
		}
		nav = nav2
	} else {
		nav, _ = coursenav.Brandeis()
	}
	if err := nav.UseSyntheticHistory(*histYears, *seed); err != nil {
		log.Fatalf("coursenav-server: history: %v", err)
	}
	if unreachable, never := nav.Lint(); len(unreachable)+len(never) > 0 {
		log.Printf("warning: catalog lint: unreachable=%v never-offered=%v", unreachable, never)
	}

	s := server.New(nav)
	s.NodeBudget = *nodeBudget
	s.RequestTimeout = *requestTimeout
	s.MaxConcurrent = *maxConcurrent
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(s),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("coursenav-server: %d courses, listening on %s", nav.NumCourses(), *addr)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("coursenav-server: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately rather than waiting on the drain
	log.Printf("coursenav-server: shutting down, draining in-flight requests (limit %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("coursenav-server: drain incomplete: %v", err)
		_ = httpServer.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("coursenav-server: %v", err)
	}
	log.Printf("coursenav-server: bye")
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		next.ServeHTTP(w, r)
		log.Println(fmt.Sprintf("%s %s (%v)", r.Method, r.URL.Path, time.Since(began).Round(time.Microsecond)))
	})
}
